//! Durable snapshots of a live engine: the predictor tables and
//! screening counters of every shard, serialized with the same CRC32c
//! section framing as the on-disk trace format and written atomically.
//!
//! ```text
//! file: snap-<seq>.cspsnap
//!   magic "CSPSNAP1"
//!   header: scheme (u16 len + utf8), nodes u8, shards u16, seq u64 [CRC]
//!   per shard:
//!     confusion tp/fp/tn/fn  4×u64
//!     updates/scored/queries/restarts  4×u64
//!     n_entries u64
//!     entries, sorted by key:
//!       key u64
//!       history family: depth u8, len u8, head u8, depth × bitmap u64
//!       PAs family:     depth u8, hist[nodes], counters[nodes << depth]
//!     [CRC]
//! ```
//!
//! Entries are written in sorted key order, so serializing the same
//! logical state always produces the same bytes — snapshot files can be
//! compared for equality in tests. [`SnapshotStore`] manages a directory
//! of them: atomic tmp+rename writes ([`csp_trace::io::write_file_atomically`]),
//! newest-first restore that quarantines corrupt files (renamed to
//! `*.corrupt`) instead of giving up, and pruning of obsolete files.
//!
//! A snapshot restores to a *bit-identical* engine: same predictions,
//! same counters (see `snapshot_roundtrip_is_bit_identical` below and
//! `tests/crash_recovery.rs`).

use crate::error::ServeError;
use crate::shard::{ShardState, ShardedEngine};
use csp_core::{
    EntryView, HistoryEntry, PasEntry, PredictorTable, RawHistoryEntry, RawPasEntry, Scheme,
    TableEntry, MAX_DEPTH,
};
use csp_metrics::ConfusionMatrix;
use csp_trace::io::{write_file_atomically, ChecksumReader, ChecksumWriter};
use csp_trace::SharingBitmap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"CSPSNAP1";

/// The full restorable state of a [`ShardedEngine`] at one point in time.
#[derive(Clone, Debug)]
pub struct EngineState {
    /// The scheme the engine serves.
    pub scheme: Scheme,
    /// Machine width.
    pub nodes: usize,
    /// Position marker: how many input events had been applied when this
    /// state was captured (replay mode), or a monotonically increasing
    /// snapshot sequence number (serve mode). Restore resumes from here.
    pub seq: u64,
    /// Per-shard states, in shard order.
    pub shards: Vec<ShardState>,
}

impl EngineState {
    /// Captures a live engine's state (see
    /// [`ShardedEngine::snapshot_state`] for the consistency contract).
    pub fn capture(engine: &ShardedEngine, seq: u64) -> Self {
        EngineState {
            scheme: *engine.scheme(),
            nodes: engine.nodes(),
            seq,
            shards: engine.snapshot_state(),
        }
    }

    /// Spawns an engine that continues exactly where this state left off.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotMismatch`] when the shard states are
    /// inconsistent with the recorded width.
    pub fn restore(self) -> Result<ShardedEngine, ServeError> {
        ShardedEngine::with_state(self.scheme, self.nodes, self.shards)
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn get_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn get_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}

fn get_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serializes an engine state to `w` (see the module docs for the
/// layout). Deterministic: equal states produce equal bytes.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_engine_state<W: Write>(w: W, state: &EngineState) -> io::Result<()> {
    let mut w = ChecksumWriter::new(w);
    w.write_all(MAGIC)?;
    let scheme = state.scheme.to_string();
    w.write_all(&(scheme.len() as u16).to_le_bytes())?;
    w.write_all(scheme.as_bytes())?;
    w.write_all(&[state.nodes as u8])?;
    w.write_all(&(state.shards.len() as u16).to_le_bytes())?;
    put_u64(&mut w, state.seq)?;
    w.write_section_crc()?;
    for shard in &state.shards {
        for v in [
            shard.confusion.tp,
            shard.confusion.fp,
            shard.confusion.tn,
            shard.confusion.fn_,
            shard.updates,
            shard.scored,
            shard.queries,
            shard.restarts,
        ] {
            put_u64(&mut w, v)?;
        }
        let mut entries: Vec<(u64, EntryView<'_>)> = shard.table.entries().collect();
        entries.sort_by_key(|&(key, _)| key);
        put_u64(&mut w, entries.len() as u64)?;
        for (key, entry) in entries {
            put_u64(&mut w, key)?;
            match entry {
                EntryView::History(e) => {
                    let raw = e.to_raw();
                    w.write_all(&[raw.depth, raw.len, raw.head])?;
                    for slot in &raw.bitmaps[..raw.depth as usize] {
                        put_u64(&mut w, slot.bits())?;
                    }
                }
                EntryView::Pas(e) => {
                    let raw = e.to_raw();
                    w.write_all(&[raw.depth])?;
                    w.write_all(&raw.hist)?;
                    w.write_all(&raw.counters)?;
                }
            }
        }
        w.write_section_crc()?;
    }
    Ok(())
}

/// Deserializes an engine state, verifying every section checksum and
/// rejecting structurally impossible entries.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on bad magic, checksum mismatch, or an
/// entry that no run could have produced; other kinds propagate from the
/// reader (truncation surfaces as `UnexpectedEof`).
pub fn read_engine_state<R: Read>(r: R) -> io::Result<EngineState> {
    let mut r = ChecksumReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a snapshot file (bad magic)"));
    }
    let scheme_len = get_u16(&mut r)? as usize;
    let mut scheme_bytes = vec![0u8; scheme_len];
    r.read_exact(&mut scheme_bytes)?;
    let scheme: Scheme = std::str::from_utf8(&scheme_bytes)
        .map_err(|_| bad("scheme is not UTF-8"))?
        .parse()
        .map_err(|e| bad(format!("unparseable scheme: {e}")))?;
    let nodes = get_u8(&mut r)? as usize;
    let shard_count = get_u16(&mut r)? as usize;
    let seq = get_u64(&mut r)?;
    r.check_section_crc("snapshot header")?;
    if nodes == 0 || shard_count == 0 {
        return Err(bad("snapshot header has zero nodes or shards"));
    }
    let node_mask = SharingBitmap::all(nodes).bits();
    let mut shards = Vec::with_capacity(shard_count);
    for s in 0..shard_count {
        let confusion = ConfusionMatrix {
            tp: get_u64(&mut r)?,
            fp: get_u64(&mut r)?,
            tn: get_u64(&mut r)?,
            fn_: get_u64(&mut r)?,
        };
        let updates = get_u64(&mut r)?;
        let scored = get_u64(&mut r)?;
        let queries = get_u64(&mut r)?;
        let restarts = get_u64(&mut r)?;
        let n_entries = get_u64(&mut r)?;
        let mut table = PredictorTable::new(&scheme, nodes);
        let history_family = table.uses_history();
        for _ in 0..n_entries {
            let key = get_u64(&mut r)?;
            let entry = if history_family {
                let depth = get_u8(&mut r)?;
                let len = get_u8(&mut r)?;
                let head = get_u8(&mut r)?;
                if depth as usize > MAX_DEPTH {
                    return Err(bad(format!("history depth {depth} exceeds {MAX_DEPTH}")));
                }
                let mut bitmaps = [SharingBitmap::empty(); MAX_DEPTH];
                for slot in bitmaps.iter_mut().take(depth as usize) {
                    let bits = get_u64(&mut r)?;
                    if bits & !node_mask != 0 {
                        return Err(bad(format!(
                            "bitmap names nodes beyond the {nodes}-node machine"
                        )));
                    }
                    *slot = SharingBitmap::from_bits(bits);
                }
                let raw = RawHistoryEntry {
                    bitmaps,
                    depth,
                    len,
                    head,
                };
                TableEntry::History(HistoryEntry::from_raw(&raw).map_err(bad)?)
            } else {
                let depth = get_u8(&mut r)?;
                if depth as usize > MAX_DEPTH {
                    return Err(bad(format!("PAs depth {depth} exceeds {MAX_DEPTH}")));
                }
                let mut hist = vec![0u8; nodes];
                r.read_exact(&mut hist)?;
                let mut counters = vec![0u8; nodes << depth];
                r.read_exact(&mut counters)?;
                let raw = RawPasEntry {
                    hist,
                    counters,
                    depth,
                };
                TableEntry::Pas(PasEntry::from_raw(raw, nodes).map_err(bad)?)
            };
            table.insert_entry(key, entry).map_err(bad)?;
        }
        r.check_section_crc(&format!("shard {s}"))?;
        shards.push(ShardState {
            table,
            confusion,
            updates,
            scored,
            queries,
            restarts,
        });
    }
    Ok(EngineState {
        scheme,
        nodes,
        seq,
        shards,
    })
}

/// A directory of sequence-numbered snapshot files with atomic writes,
/// corrupt-file quarantine, and newest-first restore.
///
/// # Example
///
/// ```no_run
/// use csp_serve::{snapshot::EngineState, ShardedEngine, SnapshotStore};
///
/// let engine = ShardedEngine::new("last(pid+pc8)1[direct]".parse().unwrap(), 16, 4);
/// let store = SnapshotStore::open("/var/lib/csp/snapshots")?;
/// store.save(&EngineState::capture(&engine, 0))?;
/// if let Some((state, path)) = store.load_latest()? {
///     println!("restoring seq {} from {}", state.seq, path.display());
///     let engine = state.restore()?;
/// }
/// # Ok::<(), csp_serve::ServeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    counters: std::sync::Arc<SnapshotCounters>,
}

/// Lifecycle counters for a [`SnapshotStore`], shared by clones of the
/// store. [`SnapshotStore::bind_metrics`] exposes them on a registry so
/// snapshot health shows up in the same scrape as everything else
/// instead of only in server log lines.
#[derive(Debug, Default)]
struct SnapshotCounters {
    writes: csp_obs::Counter,
    prunes: csp_obs::Counter,
    quarantines: csp_obs::Counter,
}

/// Snapshot files kept by [`SnapshotStore::save`]'s pruning: the one just
/// written plus one predecessor, so there is always a fallback if the
/// newest file is lost with the machine.
const RETAIN: usize = 2;

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| ServeError::io(&dir, e))?;
        Ok(SnapshotStore {
            dir,
            counters: std::sync::Arc::default(),
        })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Registers this store's lifecycle counters (`csp_snapshot_*`) on
    /// `registry` — typically the engine registry, so one scrape covers
    /// predictions and durability alike. Clones of the store share the
    /// counters, so bind once per store lineage.
    pub fn bind_metrics(&self, registry: &csp_obs::Registry) {
        let poll = |f: fn(&SnapshotCounters) -> &csp_obs::Counter| {
            let c = std::sync::Arc::clone(&self.counters);
            move || f(&c).get()
        };
        registry.register_counter_fn(
            "csp_snapshot_writes_total",
            "Snapshot files written durably.",
            &[],
            poll(|c| &c.writes),
        );
        registry.register_counter_fn(
            "csp_snapshot_prunes_total",
            "Obsolete snapshot files removed by retention.",
            &[],
            poll(|c| &c.prunes),
        );
        registry.register_counter_fn(
            "csp_snapshot_quarantines_total",
            "Corrupt snapshot files renamed aside during restore.",
            &[],
            poll(|c| &c.quarantines),
        );
    }

    fn path_for(&self, seq: u64) -> PathBuf {
        // Zero-padded so casual `ls` shows sequence order; retention and
        // restore order parse the number back out rather than trusting
        // name order or mtime.
        self.dir.join(format!("snap-{seq:020}.cspsnap"))
    }

    /// The sequence number embedded in a snapshot filename, if it is one.
    fn parse_seq(path: &Path) -> Option<u64> {
        let name = path.file_name()?.to_str()?;
        let digits = name.strip_prefix("snap-")?.strip_suffix(".cspsnap")?;
        digits.parse().ok()
    }

    /// Writes `state` durably (tmp sibling + fsync + rename, so a crash
    /// mid-write never damages an existing snapshot) and prunes all but
    /// the newest [`RETAIN`] files. Returns the written path.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on any filesystem failure.
    pub fn save(&self, state: &EngineState) -> Result<PathBuf, ServeError> {
        let mut bytes = Vec::new();
        write_engine_state(&mut bytes, state).map_err(|e| ServeError::io(&self.dir, e))?;
        let path = self.path_for(state.seq);
        write_file_atomically(&path, &bytes).map_err(|e| ServeError::io(&path, e))?;
        self.counters.writes.inc();
        for (_, old) in self.list()?.into_iter().rev().skip(RETAIN) {
            // Pruning is best-effort: a leftover file only wastes space.
            if std::fs::remove_file(old).is_ok() {
                self.counters.prunes.inc();
            }
        }
        Ok(path)
    }

    /// Snapshot files in ascending order of their *embedded* sequence
    /// number. Retention and restore must never order by filename string
    /// or mtime: an unpadded name sorts wrong lexicographically, and
    /// mtimes can collide (coarse filesystem timestamps) or run backwards
    /// (clock skew, restored backups) — either would prune the newest
    /// snapshot. Files without a parseable sequence are not snapshots and
    /// are ignored.
    fn list(&self) -> Result<Vec<(u64, PathBuf)>, ServeError> {
        let mut files: Vec<(u64, PathBuf)> = std::fs::read_dir(&self.dir)
            .map_err(|e| ServeError::io(&self.dir, e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter_map(|p| Self::parse_seq(&p).map(|seq| (seq, p)))
            .collect();
        files.sort();
        Ok(files)
    }

    /// Loads the newest readable snapshot, if any.
    ///
    /// Files that fail to parse or checksum are *quarantined* (renamed to
    /// `<name>.corrupt`) and the next-newest is tried — one damaged file
    /// never blocks recovery while an older good snapshot exists.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be scanned.
    pub fn load_latest(&self) -> Result<Option<(EngineState, PathBuf)>, ServeError> {
        for (_, path) in self.list()?.into_iter().rev() {
            match std::fs::File::open(&path) {
                Ok(file) => match read_engine_state(io::BufReader::new(file)) {
                    Ok(state) => return Ok(Some((state, path))),
                    Err(_) => self.quarantine(&path),
                },
                Err(_) => self.quarantine(&path),
            }
        }
        Ok(None)
    }

    fn quarantine(&self, path: &Path) {
        let mut to = path.as_os_str().to_owned();
        to.push(".corrupt");
        if std::fs::rename(path, PathBuf::from(to)).is_ok() {
            self.counters.quarantines.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::fault::{all_single_byte_flips, Mutation, MutationStream};
    use csp_trace::{LineAddr, NodeId, Pc, SharingEvent, Trace};

    fn training_trace(events: usize) -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Vec<Option<(NodeId, Pc)>> = vec![None; 6];
        for i in 0..events {
            let line = (i % 6) as u64;
            let writer = NodeId(((i * 7) % 16) as u8);
            let pc = Pc(64 + (i % 5) as u32);
            let inv = match prev[line as usize] {
                None => SharingBitmap::empty(),
                Some((w, _)) => {
                    SharingBitmap::from_nodes(&[NodeId((w.index() as u8 + 3) % 16), writer])
                }
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(line),
                NodeId((line % 4) as u8),
                inv,
                prev[line as usize],
            ));
            prev[line as usize] = Some((writer, pc));
        }
        for line in 0..6u64 {
            t.set_final_readers(LineAddr(line), SharingBitmap::from_nodes(&[NodeId(2)]));
        }
        t
    }

    fn trained_state(spec: &str, shards: usize) -> EngineState {
        let trace = training_trace(300);
        let engine = ShardedEngine::new(spec.parse().unwrap(), trace.nodes(), shards);
        engine.replay_trace(&trace).unwrap();
        EngineState::capture(&engine, trace.len() as u64)
    }

    fn assert_states_equal(a: &EngineState, b: &EngineState) {
        // Byte-level determinism doubles as deep equality.
        let (mut ab, mut bb) = (Vec::new(), Vec::new());
        write_engine_state(&mut ab, a).unwrap();
        write_engine_state(&mut bb, b).unwrap();
        assert_eq!(ab, bb);
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        for spec in [
            "last(pid+pc8)1[direct]",
            "union(pid+pc4+add4)2[forwarded]",
            "inter(dir+add8)3[direct]",
            "pas(pid+pc6)2[direct]",
        ] {
            let state = trained_state(spec, 4);
            let mut bytes = Vec::new();
            write_engine_state(&mut bytes, &state).unwrap();
            let back = read_engine_state(bytes.as_slice()).unwrap();
            assert_eq!(back.scheme, state.scheme, "{spec}");
            assert_eq!(back.nodes, state.nodes, "{spec}");
            assert_eq!(back.seq, state.seq, "{spec}");
            assert_states_equal(&back, &state);
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let state = trained_state("union(pid+pc8)2[direct]", 3);
        let mut bytes = Vec::new();
        write_engine_state(&mut bytes, &state).unwrap();
        for m in all_single_byte_flips(&bytes, 0x01) {
            let corrupt = m.apply(&bytes);
            assert!(
                read_engine_state(corrupt.as_slice()).is_err(),
                "{m:?} went undetected"
            );
        }
    }

    #[test]
    fn random_mutations_never_panic_the_reader() {
        let state = trained_state("pas(pid+pc4)2[direct]", 2);
        let mut bytes = Vec::new();
        write_engine_state(&mut bytes, &state).unwrap();
        for m in MutationStream::new(bytes.len(), 0xC0FFEE).take(500) {
            let corrupt = m.apply(&bytes);
            let _ = read_engine_state(corrupt.as_slice());
        }
        // Truncations in particular must be clean errors.
        for len in [0, 1, 7, 8, 20, bytes.len() - 1] {
            let m = Mutation::Truncate { len };
            assert!(read_engine_state(m.apply(&bytes).as_slice()).is_err());
        }
    }

    #[test]
    fn store_saves_prunes_quarantines_and_restores_the_newest() {
        let dir = std::env::temp_dir().join(format!("csp-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());

        let mut state = trained_state("last(pid+pc8)1[direct]", 2);
        for seq in [10, 20, 30] {
            state.seq = seq;
            store.save(&state).unwrap();
        }
        // Pruned down to RETAIN files, newest wins.
        assert_eq!(store.list().unwrap().len(), RETAIN);
        let (loaded, path) = store.load_latest().unwrap().unwrap();
        assert_eq!(loaded.seq, 30);
        assert!(path.ends_with("snap-00000000000000000030.cspsnap"));

        // Corrupt the newest: restore falls back and quarantines.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let (fallback, fb_path) = store.load_latest().unwrap().unwrap();
        assert_eq!(fallback.seq, 20);
        assert!(fb_path.ends_with("snap-00000000000000000020.cspsnap"));
        assert!(!path.exists(), "corrupt file still in the way");
        let mut quarantined = path.as_os_str().to_owned();
        quarantined.push(".corrupt");
        assert!(PathBuf::from(quarantined).exists());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_orders_by_embedded_seq_not_name_or_mtime() {
        let dir = std::env::temp_dir().join(format!("csp-snap-order-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        let mut state = trained_state("last(pid+pc8)1[direct]", 2);

        // Saved newest-first, so mtime order contradicts sequence order.
        state.seq = 30;
        store.save(&state).unwrap();
        state.seq = 10;
        store.save(&state).unwrap();
        // An unpadded filename (an operator-restored backup, say): it
        // sorts *after* every zero-padded name lexicographically even
        // though its sequence is the oldest of all.
        state.seq = 5;
        let mut bytes = Vec::new();
        write_engine_state(&mut bytes, &state).unwrap();
        let unpadded = dir.join("snap-5.cspsnap");
        std::fs::write(&unpadded, &bytes).unwrap();
        // Identical mtimes on everything: a coarse-timestamp filesystem.
        let stamp = std::time::SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000_000);
        for entry in std::fs::read_dir(&dir).unwrap() {
            let f = std::fs::File::options()
                .write(true)
                .open(entry.unwrap().path())
                .unwrap();
            f.set_modified(stamp).unwrap();
        }

        // This save prunes: only the two highest sequences may survive.
        state.seq = 20;
        store.save(&state).unwrap();
        let kept: Vec<u64> = store.list().unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(kept, vec![20, 30], "retention kept the wrong snapshots");
        assert!(!unpadded.exists(), "stale unpadded snapshot survived");
        let (latest, _) = store.load_latest().unwrap().unwrap();
        assert_eq!(latest.seq, 30, "restore picked a stale snapshot");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lifecycle_counters_surface_through_a_registry() {
        let dir = std::env::temp_dir().join(format!("csp-snap-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        let registry = csp_obs::Registry::new();
        store.bind_metrics(&registry);

        let mut state = trained_state("last(pid+pc8)1[direct]", 2);
        for seq in [1, 2, 3] {
            state.seq = seq;
            store.save(&state).unwrap();
        }
        // Corrupt the newest so a restore must quarantine it.
        let (_, newest) = store.load_latest().unwrap().unwrap();
        std::fs::write(&newest, b"garbage").unwrap();
        store.load_latest().unwrap().unwrap();

        let samples = csp_obs::parse_text(&registry.encode_prometheus());
        let get = |name: &str| csp_obs::sum_counter(&samples, name);
        assert_eq!(get("csp_snapshot_writes_total"), 3);
        assert_eq!(get("csp_snapshot_prunes_total"), 1); // 3 saved, RETAIN=2
        assert_eq!(get("csp_snapshot_quarantines_total"), 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_engine_predicts_identically() {
        let trace = training_trace(300);
        let scheme: Scheme = "union(pid+pc8)2[forwarded]".parse().unwrap();
        let engine = ShardedEngine::new(scheme, trace.nodes(), 4);
        engine.replay_trace(&trace).unwrap();
        let mut bytes = Vec::new();
        write_engine_state(&mut bytes, &EngineState::capture(&engine, 0)).unwrap();
        let restored = read_engine_state(bytes.as_slice())
            .unwrap()
            .restore()
            .unwrap();

        let nb = csp_core::node_bits(trace.nodes());
        let keys: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| scheme.index.key_of(e, nb))
            .collect();
        assert_eq!(engine.predict_keys(&keys), restored.predict_keys(&keys));
        let (a, b) = (engine.stats(), restored.stats());
        assert_eq!(a.confusion, b.confusion);
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.entries, b.entries);
    }
}
