//! The query front-end: serves the wire protocol over TCP or Unix
//! sockets, one connection-handler thread per client, all sharing one
//! [`ShardedEngine`].
//!
//! # Failure model
//!
//! A hostile or broken client must never take the server down or wedge a
//! handler thread forever (see `PROTOCOL.md`, "Failure model & recovery"):
//!
//! * **Deadlines** — client sockets carry read/write timeouts
//!   ([`ServerOptions::read_timeout`]). A connection that stalls
//!   *mid-frame* (slowloris) is cut; one that is merely idle between
//!   requests is kept.
//! * **Error budget** — malformed-but-framed requests and checksum
//!   failures each get a typed [`Response::Error`]; a connection that
//!   keeps sending garbage exhausts [`ServerOptions::error_budget`] and
//!   is disconnected with a final typed error frame.
//! * **Framing loss** — an oversized length prefix cannot be skipped
//!   safely, so it draws a typed error and an immediate disconnect.
//! * **Graceful shutdown** — [`Server::shutdown_handle`] returns a flag
//!   that makes [`Server::run`] stop accepting, drain in-flight
//!   connections, and return, so the owner can take a final snapshot.

use crate::error::ServeError;
use crate::replication::{self, SegmentError, MAX_SEGMENT_OPS};
use crate::shard::ShardedEngine;
use crate::wire::{self, FrameRead, Request, Response, StatsReply};
use csp_obs::{span, Counter, Gauge, Histogram, Registry};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connection-robustness knobs for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerOptions {
    /// Per-read deadline on client sockets. A timeout while *idle* (no
    /// frame started) keeps the connection; a timeout *mid-frame* cuts
    /// it. `None` disables the deadline entirely.
    pub read_timeout: Option<Duration>,
    /// Per-write deadline on client sockets (protects handler threads
    /// from clients that stop reading).
    pub write_timeout: Option<Duration>,
    /// Protocol errors (bad checksum, malformed request) a connection
    /// may accumulate before it is disconnected.
    pub error_budget: u32,
    /// How long [`Server::run`] waits for in-flight connections to end
    /// after shutdown is requested before returning anyway.
    pub drain_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            error_budget: 8,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// A cloneable flag that asks a running [`Server`] to shut down
/// gracefully: stop accepting, drain connections, return from
/// [`Server::run`].
///
/// After a replicated server drains, the handle also carries the final
/// durable journal offset ([`final_offset`](Self::final_offset)), so the
/// owner can log exactly where the operation log ended.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    final_offset: Arc<AtomicU64>,
}

/// Sentinel for "no final offset recorded (yet)".
const OFFSET_UNSET: u64 = u64::MAX;

impl Default for ShutdownHandle {
    fn default() -> Self {
        ShutdownHandle {
            flag: Arc::new(AtomicBool::new(false)),
            final_offset: Arc::new(AtomicU64::new(OFFSET_UNSET)),
        }
    }
}

impl ShutdownHandle {
    /// A fresh, un-triggered handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown. Idempotent; never blocks.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Records the final journal offset observed at drain time.
    pub fn record_final_offset(&self, offset: u64) {
        self.final_offset.store(offset, Ordering::Release);
    }

    /// The final journal offset recorded at drain, if any. `None` until
    /// a replicated [`Server::run`] has drained (or a follower loop has
    /// recorded its last applied offset).
    pub fn final_offset(&self) -> Option<u64> {
        match self.final_offset.load(Ordering::Acquire) {
            OFFSET_UNSET => None,
            offset => Some(offset),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// Callback a [`Server`] invokes on a wire [`Request::Promote`] (after
/// the fingerprint check): perform the whole promotion — epoch bump,
/// follower-loop stop, leader flip, address re-parenting — and return
/// the new `(epoch, head)`, or a message for the error frame. Must be
/// idempotent: operators retry promotion.
pub type PromoteHook = Arc<dyn Fn(u64) -> Result<(u64, u64), String> + Send + Sync>;

/// A prediction server bound to a socket, not yet accepting.
///
/// [`run`](Server::run) accepts until [`shutdown_handle`](Server::shutdown_handle)
/// fires; spawn it on a thread to serve in the background (see the
/// crate-level example).
pub struct Server {
    listener: Listener,
    engine: Arc<ShardedEngine>,
    options: ServerOptions,
    shutdown: ShutdownHandle,
    promote: Option<PromoteHook>,
}

impl Server {
    /// Binds a TCP listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind_tcp<A: ToSocketAddrs>(addr: A, engine: Arc<ShardedEngine>) -> io::Result<Self> {
        Ok(Server {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            engine,
            options: ServerOptions::default(),
            shutdown: ShutdownHandle::new(),
            promote: None,
        })
    }

    /// Binds a Unix-domain socket listener at `path`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (e.g. the path already exists).
    #[cfg(unix)]
    pub fn bind_unix<P: AsRef<std::path::Path>>(
        path: P,
        engine: Arc<ShardedEngine>,
    ) -> io::Result<Self> {
        Ok(Server {
            listener: Listener::Unix(UnixListener::bind(path)?),
            engine,
            options: ServerOptions::default(),
            shutdown: ShutdownHandle::new(),
            promote: None,
        })
    }

    /// Replaces the connection-robustness options.
    #[must_use]
    pub fn with_options(mut self, options: ServerOptions) -> Self {
        self.options = options;
        self
    }

    /// Installs the promotion callback wire [`Request::Promote`] frames
    /// invoke. Without one, promotion falls back to the log-level
    /// default in [`answer`] (epoch bump + leader flip), which suffices
    /// for a standalone replica but cannot stop a follower loop or
    /// re-parent downstreams.
    #[must_use]
    pub fn with_promote_hook(mut self, hook: PromoteHook) -> Self {
        self.promote = Some(hook);
        self
    }

    /// The flag that stops [`run`](Self::run) gracefully. Clone it out
    /// before spawning the server thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// The bound TCP address (for ephemeral-port binds).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] for Unix-socket servers.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr(),
            #[cfg(unix)]
            Listener::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-socket server has no TCP address",
            )),
        }
    }

    /// Accepts connections, one handler thread per client, until a fatal
    /// accept error or a [`shutdown_handle`](Self::shutdown_handle)
    /// request. On shutdown the accept loop stops, in-flight connections
    /// are drained (bounded by [`ServerOptions::drain_timeout`]), and
    /// `Ok(())` is returned — the caller then owns the engine again and
    /// can snapshot it.
    ///
    /// # Errors
    ///
    /// Returns only on a fatal accept error; per-connection I/O errors
    /// just end that connection.
    pub fn run(self) -> io::Result<()> {
        let active = Arc::new(AtomicUsize::new(0));
        let poll = Duration::from_millis(25);
        match &self.listener {
            Listener::Tcp(listener) => {
                listener.set_nonblocking(true)?;
                while !self.shutdown.is_shutdown() {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nodelay(true)?;
                            stream.set_nonblocking(false)?;
                            stream.set_read_timeout(self.options.read_timeout)?;
                            stream.set_write_timeout(self.options.write_timeout)?;
                            self.spawn_handler(stream, &active);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(poll);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            #[cfg(unix)]
            Listener::Unix(listener) => {
                listener.set_nonblocking(true)?;
                while !self.shutdown.is_shutdown() {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nonblocking(false)?;
                            stream.set_read_timeout(self.options.read_timeout)?;
                            stream.set_write_timeout(self.options.write_timeout)?;
                            self.spawn_handler(stream, &active);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(poll);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        // Drain: handlers see the shutdown flag at their next idle read
        // and wind down; bound the wait so a wedged peer cannot hold the
        // process open forever.
        let deadline = Instant::now() + self.options.drain_timeout;
        while active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        if let Some(log) = self.engine.replication() {
            self.shutdown.record_final_offset(log.head());
        }
        Ok(())
    }

    fn spawn_handler<S>(&self, stream: S, active: &Arc<AtomicUsize>)
    where
        S: Send + 'static,
        for<'a> &'a S: Read + Write,
    {
        let engine = Arc::clone(&self.engine);
        let options = self.options;
        let shutdown = self.shutdown.clone();
        let promote = self.promote.clone();
        let active = Arc::clone(active);
        active.fetch_add(1, Ordering::AcqRel);
        std::thread::spawn(move || {
            let reader = BufReader::new(&stream);
            let writer = BufWriter::new(&stream);
            let _ = serve_connection_with(
                reader,
                writer,
                &engine,
                &options,
                &shutdown,
                promote.as_ref(),
            );
            active.fetch_sub(1, Ordering::AcqRel);
        });
    }
}

/// The wire-layer instruments one connection records into. Built from
/// the engine registry when the connection opens (cold: a handful of
/// registry lookups); everything on the per-frame path is an atomic op
/// on these shared handles.
struct WireMetrics {
    connections_total: Arc<Counter>,
    connections_active: Arc<Gauge>,
    errors: Arc<Counter>,
    decode_ns: Arc<Histogram>,
    encode_ns: Arc<Histogram>,
    ping: Arc<Counter>,
    predict: Arc<Counter>,
    predict_batch: Arc<Counter>,
    stats: Arc<Counter>,
    metrics: Arc<Counter>,
    ingest: Arc<Counter>,
    subscribe: Arc<Counter>,
    promote: Arc<Counter>,
    invalid: Arc<Counter>,
}

impl WireMetrics {
    fn new(registry: &Registry) -> Self {
        let frames = |ty: &str| {
            registry.counter(
                "csp_wire_frames_total",
                "Request frames received, by decoded type.",
                &[("type", ty)],
            )
        };
        WireMetrics {
            connections_total: registry.counter(
                "csp_connections_total",
                "Client connections accepted.",
                &[],
            ),
            connections_active: registry.gauge(
                "csp_connections_active",
                "Client connections currently open.",
                &[],
            ),
            errors: registry.counter(
                "csp_wire_errors_total",
                "Protocol errors answered with a typed error frame.",
                &[],
            ),
            decode_ns: registry.histogram(
                "csp_wire_decode_ns",
                "First byte to decoded request, in nanoseconds.",
                &[],
            ),
            encode_ns: registry.histogram(
                "csp_wire_encode_ns",
                "Response encode + write + flush, in nanoseconds.",
                &[],
            ),
            ping: frames("ping"),
            predict: frames("predict"),
            predict_batch: frames("predict_batch"),
            stats: frames("stats"),
            metrics: frames("metrics"),
            ingest: frames("ingest"),
            subscribe: frames("subscribe"),
            promote: frames("promote"),
            invalid: frames("invalid"),
        }
    }

    fn count_request(&self, request: &Request) {
        match request {
            Request::Ping => self.ping.inc(),
            Request::Predict(_) => self.predict.inc(),
            Request::PredictBatch(_) => self.predict_batch.inc(),
            Request::Stats => self.stats.inc(),
            Request::Metrics => self.metrics.inc(),
            Request::Ingest { .. } => self.ingest.inc(),
            Request::Subscribe { .. } => self.subscribe.inc(),
            Request::Promote { .. } => self.promote.inc(),
        }
    }
}

/// Keeps `csp_connections_active` balanced on every exit path.
struct ActiveConnection(Arc<Gauge>);

impl ActiveConnection {
    fn open(metrics: &WireMetrics) -> Self {
        metrics.connections_total.inc();
        metrics.connections_active.add(1);
        ActiveConnection(Arc::clone(&metrics.connections_active))
    }
}

impl Drop for ActiveConnection {
    fn drop(&mut self) {
        self.0.sub(1);
    }
}

/// `true` for the error kinds a socket read/write deadline produces.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Waits for the first byte of the next frame. Read-deadline expiries
/// here mean the connection is merely *idle*, so the wait continues —
/// unless shutdown was requested, which ends it.
///
/// Returns `None` on clean EOF or shutdown.
fn wait_first_byte<R: Read>(reader: &mut R, shutdown: &ShutdownHandle) -> io::Result<Option<u8>> {
    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(first[0])),
            Err(e) if is_timeout(&e) => {
                if shutdown.is_shutdown() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn send_error<W: Write>(writer: &mut W, msg: String) -> io::Result<()> {
    wire::write_response(writer, &Response::Error(msg))?;
    writer.flush()
}

/// Serves one connection until EOF, shutdown, or disqualification: read
/// a request frame, answer it, flush.
///
/// Malformed-but-framed requests and checksum failures get a typed
/// [`Response::Error`] and count against the connection's error budget;
/// exhausting it disconnects. Framing-destroying input (an oversized
/// length prefix) or a mid-frame stall past the read deadline draws a
/// final typed error and an immediate disconnect.
///
/// # Errors
///
/// Propagates transport I/O errors (the connection is gone either way).
pub fn serve_connection<R: Read, W: Write>(
    reader: R,
    writer: W,
    engine: &ShardedEngine,
    options: &ServerOptions,
    shutdown: &ShutdownHandle,
) -> io::Result<()> {
    serve_connection_with(reader, writer, engine, options, shutdown, None)
}

/// [`serve_connection`] with an optional [`PromoteHook`] for wire
/// [`Request::Promote`] frames (what [`Server::with_promote_hook`]
/// installs per connection).
///
/// # Errors
///
/// Propagates transport I/O errors (the connection is gone either way).
pub fn serve_connection_with<R: Read, W: Write>(
    mut reader: R,
    mut writer: W,
    engine: &ShardedEngine,
    options: &ServerOptions,
    shutdown: &ShutdownHandle,
    promote: Option<&PromoteHook>,
) -> io::Result<()> {
    let metrics = WireMetrics::new(engine.registry());
    let _active = ActiveConnection::open(&metrics);
    let mut errors: u32 = 0;
    loop {
        let first = match wait_first_byte(&mut reader, shutdown)? {
            Some(b) => b,
            None => return Ok(()), // clean EOF or shutdown
        };
        // Decode time runs from the first byte of the frame to a decoded
        // request (or a rejected one); idle time waiting for that byte is
        // the client's, not ours.
        let decode_started = Instant::now();
        let outcome = match wire::read_frame_after_first(&mut reader, first) {
            Ok(o) => o,
            Err(e) if is_timeout(&e) => {
                // Mid-frame stall: a slowloris peer. Best-effort notice,
                // then hang up.
                metrics.errors.inc();
                let _ = send_error(&mut writer, "read deadline exceeded mid-frame".to_string());
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let _request_span = span("serve.request");
        let response = match outcome {
            FrameRead::Oversized { len } => {
                metrics.invalid.inc();
                metrics.errors.inc();
                let _ = send_error(
                    &mut writer,
                    format!(
                        "frame length {len} exceeds the {}-byte limit; closing",
                        wire::MAX_PAYLOAD
                    ),
                );
                return Ok(()); // framing lost, nothing more to parse
            }
            FrameRead::BadChecksum { stored, computed } => {
                errors += 1;
                metrics.invalid.inc();
                metrics.errors.inc();
                metrics.decode_ns.record_duration(decode_started.elapsed());
                Response::Error(format!(
                    "frame checksum mismatch: stored {stored:#010X}, computed {computed:#010X}"
                ))
            }
            FrameRead::Frame(payload) => match wire::decode_request(&payload) {
                Ok(Request::Subscribe {
                    fingerprint,
                    epoch,
                    from,
                }) => {
                    // Subscribe abandons request/response: the connection
                    // becomes a one-way segment stream until it drops.
                    metrics.count_request(&Request::Subscribe {
                        fingerprint,
                        epoch,
                        from,
                    });
                    metrics.decode_ns.record_duration(decode_started.elapsed());
                    return stream_segments(
                        &mut writer,
                        engine,
                        shutdown,
                        fingerprint,
                        epoch,
                        from,
                    );
                }
                Ok(
                    request @ Request::Promote {
                        fingerprint,
                        min_epoch,
                    },
                ) if promote.is_some() => {
                    metrics.count_request(&request);
                    metrics.decode_ns.record_duration(decode_started.elapsed());
                    let expected = replication::fingerprint(engine.scheme(), engine.nodes());
                    if fingerprint != expected {
                        Response::Error(format!(
                            "promote fingerprint mismatch: got {fingerprint:#010X}, \
                             engine is {expected:#010X} (scheme/width/revision differ)"
                        ))
                    } else {
                        match promote.map(|hook| hook(min_epoch)) {
                            Some(Ok((epoch, head))) => Response::Promoted { epoch, head },
                            Some(Err(msg)) => Response::Error(format!("promotion failed: {msg}")),
                            // Unreachable: the match arm is guarded by
                            // `promote.is_some()`.
                            None => Response::Error("no promotion hook installed".to_string()),
                        }
                    }
                }
                Ok(request) => {
                    metrics.count_request(&request);
                    metrics.decode_ns.record_duration(decode_started.elapsed());
                    answer(engine, request)
                }
                Err(e) => {
                    errors += 1;
                    metrics.invalid.inc();
                    metrics.errors.inc();
                    metrics.decode_ns.record_duration(decode_started.elapsed());
                    Response::Error(e.to_string())
                }
            },
        };
        let encode_started = Instant::now();
        wire::write_response(&mut writer, &response)?;
        writer.flush()?;
        metrics.encode_ns.record_duration(encode_started.elapsed());
        if errors > options.error_budget {
            let _ = send_error(
                &mut writer,
                format!("error budget exhausted ({errors} protocol errors); closing",),
            );
            return Ok(());
        }
    }
}

/// Streams journal segments to a subscribed follower until the
/// connection drops, shutdown fires, or the subscription is
/// disqualified (wrong fingerprint, a subscriber ahead of this server's
/// epoch, compacted-away offset, an offset past the head). Heartbeat
/// (empty) segments flow while the log is idle so the follower can
/// watch lag and liveness.
///
/// The subscriber holds a compaction lease for the duration of the
/// stream, renewed per shipped segment: the horizon it may still ask
/// for is never reclaimed under it (see
/// [`replication::ReplicationLog::compact`]).
///
/// A follower that stops reading fills its socket buffers and trips the
/// server's write deadline here — backpressure cuts the slow subscriber
/// instead of wedging the handler thread or buffering unboundedly (its
/// lease then lapses after the TTL, unpinning compaction).
fn stream_segments<W: Write>(
    writer: &mut W,
    engine: &ShardedEngine,
    shutdown: &ShutdownHandle,
    fingerprint: u32,
    peer_epoch: u64,
    from: u64,
) -> io::Result<()> {
    let Some(log) = engine.replication() else {
        return send_error(
            writer,
            "this server is not replicated; nothing to subscribe to".to_string(),
        );
    };
    if fingerprint != log.fingerprint() {
        return send_error(
            writer,
            format!(
                "subscribe fingerprint mismatch: got {fingerprint:#010X}, \
                 log is {:#010X} (scheme/width/revision differ)",
                log.fingerprint()
            ),
        );
    }
    if peer_epoch > log.epoch() {
        // The subscriber has seen a newer term than ours: we are the
        // stale side. Refuse to serve deposed history.
        return send_error(
            writer,
            format!(
                "fenced: this server's epoch {} is behind the subscriber's {peer_epoch}; \
                 find the current leader",
                log.epoch()
            ),
        );
    }
    let lease = log.lease_grant(from);
    let lease_ms = log.lease_ttl().as_millis().min(u128::from(u32::MAX)) as u32;
    let mut offset = from;
    let heartbeat = Duration::from_millis(500);
    let result = loop {
        if shutdown.is_shutdown() {
            break Ok(());
        }
        let segment = match log.wait_segment(offset, MAX_SEGMENT_OPS, heartbeat) {
            Ok(segment) => segment,
            Err(SegmentError::TooOld { oldest }) => {
                break send_error(
                    writer,
                    format!(
                        "offset {offset} was compacted away (oldest retained is {oldest}); \
                         re-bootstrap from a newer snapshot"
                    ),
                );
            }
            Err(SegmentError::Ahead { head }) => {
                break send_error(
                    writer,
                    format!("offset {offset} is ahead of the log head {head}"),
                );
            }
        };
        let next = segment.start + segment.ops.len() as u64;
        let frame = replication::segment_frame(log.fingerprint(), lease_ms, &segment);
        if let Err(e) = wire::write_response(writer, &Response::JournalSegment(frame))
            .and_then(|()| writer.flush())
        {
            break Err(e);
        }
        offset = next;
        log.lease_renew(lease, offset);
    };
    log.lease_release(lease);
    result
}

/// Computes the response to one request.
pub fn answer(engine: &ShardedEngine, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Predict(probe) => Response::Prediction(engine.predict(&probe)),
        Request::PredictBatch(probes) => Response::PredictionBatch(engine.predict_batch(&probes)),
        Request::Stats => Response::Stats(StatsReply::from_snapshot(
            &engine.scheme().to_string(),
            engine.nodes(),
            engine.shard_count(),
            &engine.stats(),
        )),
        Request::Metrics => Response::Metrics(metrics_text(engine)),
        Request::Ingest {
            fingerprint,
            epoch,
            ops,
        } => {
            if engine.is_follower() {
                return Response::Error("follower is read-only; ingest at the leader".to_string());
            }
            let expected = replication::fingerprint(engine.scheme(), engine.nodes());
            if fingerprint != expected {
                return Response::Error(format!(
                    "ingest fingerprint mismatch: got {fingerprint:#010X}, \
                     engine is {expected:#010X} (scheme/width/revision differ)"
                ));
            }
            match engine.ingest_replicated(epoch, &ops) {
                Ok(head) => Response::IngestAck { head },
                Err(e @ ServeError::Fenced { .. }) => Response::Error(e.to_string()),
                Err(e) => Response::Error(format!("ingest journal write failed: {e}")),
            }
        }
        // Subscribe is intercepted by `serve_connection` before `answer`;
        // reaching it here means a direct caller asked for a stream a
        // single response cannot carry.
        Request::Subscribe { .. } => Response::Error(
            "subscribe requires a streaming connection; use a follower client".to_string(),
        ),
        // The log-level promotion fallback (no hook installed): bump the
        // fencing term durably, then leave follower mode. A `Server`
        // with a [`PromoteHook`] intercepts Promote before `answer`.
        Request::Promote {
            fingerprint,
            min_epoch,
        } => {
            let expected = replication::fingerprint(engine.scheme(), engine.nodes());
            if fingerprint != expected {
                return Response::Error(format!(
                    "promote fingerprint mismatch: got {fingerprint:#010X}, \
                     engine is {expected:#010X} (scheme/width/revision differ)"
                ));
            }
            let Some(log) = engine.replication() else {
                return Response::Error(
                    "this server is not replicated; nothing to promote".to_string(),
                );
            };
            match log.bump_epoch(min_epoch) {
                Ok(epoch) => {
                    engine.mark_leader();
                    Response::Promoted {
                        epoch,
                        head: log.head(),
                    }
                }
                Err(e) => Response::Error(format!("promotion failed: {e}")),
            }
        }
    }
}

/// Encodes the engine registry for the wire, truncating at a line
/// boundary in the (pathological) case where the scrape outgrows the
/// frame limit — a short scrape beats a dropped connection.
fn metrics_text(engine: &ShardedEngine) -> String {
    let mut text = engine.registry().encode_prometheus();
    let limit = wire::MAX_PAYLOAD - 16; // type byte + length header + slack
    if text.len() > limit {
        let cut = text[..limit].rfind('\n').map_or(0, |i| i + 1);
        text.truncate(cut);
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Client, Probe};
    use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};

    fn engine() -> Arc<ShardedEngine> {
        let engine = ShardedEngine::new("last(pid)1[direct]".parse().unwrap(), 16, 2);
        for pid in 0..16u8 {
            engine.ingest_event(&SharingEvent::new(
                NodeId(pid),
                Pc(0),
                LineAddr(0),
                NodeId(0),
                SharingBitmap::singleton(NodeId(15 - pid)),
                Some((NodeId(pid), Pc(0))),
            ));
        }
        engine.flush();
        Arc::new(engine)
    }

    fn probe(pid: u8) -> Probe {
        Probe::new(NodeId(pid), Pc(0), NodeId(0), LineAddr(0))
    }

    #[test]
    fn tcp_round_trip_single_batch_and_stats() {
        let server = Server::bind_tcp("127.0.0.1:0", engine()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let mut client = Client::connect_tcp(addr).unwrap();
        client.ping().unwrap();
        assert_eq!(
            client.predict(&probe(3)).unwrap(),
            SharingBitmap::singleton(NodeId(12))
        );
        let batch: Vec<Probe> = (0..16).map(probe).collect();
        let preds = client.predict_batch(&batch).unwrap();
        for (pid, pred) in preds.iter().enumerate() {
            assert_eq!(*pred, SharingBitmap::singleton(NodeId(15 - pid as u8)));
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.scheme, "last(pid)[direct]");
        assert_eq!(stats.nodes, 16);
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.updates, 16);
        assert_eq!(stats.restarts, 0);
        assert!(stats.queries >= 17); // 1 single + 16 batch
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path =
            std::env::temp_dir().join(format!("csp-served-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let server = Server::bind_unix(&path, engine()).unwrap();
        let server_path = path.clone();
        std::thread::spawn(move || server.run());

        let mut client = Client::connect_unix(&server_path).unwrap();
        client.ping().unwrap();
        assert_eq!(
            client.predict(&probe(0)).unwrap(),
            SharingBitmap::singleton(NodeId(15))
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_request_gets_error_and_connection_survives() {
        let server = Server::bind_tcp("127.0.0.1:0", engine()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(&stream);
        let mut reader = BufReader::new(&stream);
        // A well-framed but unknown request type.
        wire::write_frame(&mut writer, &[0x7E, 1, 2]).unwrap();
        writer.flush().unwrap();
        let resp = wire::read_response(&mut reader).unwrap();
        assert!(matches!(resp, Response::Error(_)), "got {resp:?}");
        // The connection still answers real requests.
        wire::write_request(&mut writer, &Request::Ping).unwrap();
        writer.flush().unwrap();
        assert_eq!(wire::read_response(&mut reader).unwrap(), Response::Pong);
    }

    #[test]
    fn error_budget_disconnects_persistent_offenders() {
        let server = Server::bind_tcp("127.0.0.1:0", engine())
            .unwrap()
            .with_options(ServerOptions {
                error_budget: 2,
                ..ServerOptions::default()
            });
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(&stream);
        let mut reader = BufReader::new(&stream);
        // Three malformed frames: errors 1 and 2 fit the budget, the
        // third overflows it.
        for _ in 0..3 {
            wire::write_frame(&mut writer, &[0x7E]).unwrap();
            writer.flush().unwrap();
            let resp = wire::read_response(&mut reader).unwrap();
            assert!(matches!(resp, Response::Error(_)), "got {resp:?}");
        }
        // The final typed frame announces the disconnect...
        match wire::read_response(&mut reader).unwrap() {
            Response::Error(msg) => assert!(msg.contains("budget"), "got: {msg}"),
            other => panic!("expected the budget error, got {other:?}"),
        }
        // ...and then the server hangs up.
        assert!(wire::read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_draws_error_and_disconnect() {
        let server = Server::bind_tcp("127.0.0.1:0", engine()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(&stream);
        let mut reader = BufReader::new(&stream);
        writer.write_all(&u32::MAX.to_le_bytes()).unwrap();
        writer.flush().unwrap();
        match wire::read_response(&mut reader).unwrap() {
            Response::Error(msg) => assert!(msg.contains("limit"), "got: {msg}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
        assert!(wire::read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn corrupt_checksum_gets_typed_error_and_connection_survives() {
        let server = Server::bind_tcp("127.0.0.1:0", engine()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(&stream);
        let mut reader = BufReader::new(&stream);
        let mut frame = Vec::new();
        wire::write_request(&mut frame, &Request::Ping).unwrap();
        *frame.last_mut().unwrap() ^= 0xFF; // corrupt the CRC
        writer.write_all(&frame).unwrap();
        writer.flush().unwrap();
        match wire::read_response(&mut reader).unwrap() {
            Response::Error(msg) => assert!(msg.contains("checksum"), "got: {msg}"),
            other => panic!("expected an error frame, got {other:?}"),
        }
        // Framing was never lost: the connection still works.
        wire::write_request(&mut writer, &Request::Ping).unwrap();
        writer.flush().unwrap();
        assert_eq!(wire::read_response(&mut reader).unwrap(), Response::Pong);
    }

    #[test]
    fn slowloris_mid_frame_is_cut_by_the_read_deadline() {
        let server = Server::bind_tcp("127.0.0.1:0", engine())
            .unwrap()
            .with_options(ServerOptions {
                read_timeout: Some(Duration::from_millis(100)),
                ..ServerOptions::default()
            });
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(&stream);
        let mut reader = BufReader::new(&stream);
        // Start a frame and stall: two bytes of the length prefix, then
        // silence.
        writer.write_all(&[4, 0]).unwrap();
        writer.flush().unwrap();
        match wire::read_response(&mut reader).unwrap() {
            Response::Error(msg) => assert!(msg.contains("deadline"), "got: {msg}"),
            other => panic!("expected the deadline error, got {other:?}"),
        }
        assert!(wire::read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn idle_connection_outlives_the_read_deadline() {
        let server = Server::bind_tcp("127.0.0.1:0", engine())
            .unwrap()
            .with_options(ServerOptions {
                read_timeout: Some(Duration::from_millis(50)),
                ..ServerOptions::default()
            });
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let mut client = Client::connect_tcp(addr).unwrap();
        client.ping().unwrap();
        // Several deadline periods of silence, then another request: the
        // connection must still be there.
        std::thread::sleep(Duration::from_millis(200));
        client.ping().unwrap();
    }

    #[test]
    fn graceful_shutdown_drains_and_returns() {
        let server = Server::bind_tcp("127.0.0.1:0", engine())
            .unwrap()
            .with_options(ServerOptions {
                read_timeout: Some(Duration::from_millis(25)),
                ..ServerOptions::default()
            });
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || server.run());

        let mut client = Client::connect_tcp(addr).unwrap();
        client.ping().unwrap();
        handle.shutdown();
        let result = join.join().expect("server thread");
        assert!(result.is_ok(), "graceful shutdown errored: {result:?}");
        // The listener is gone: new connections fail or are never served.
        let refused = std::net::TcpStream::connect(addr)
            .map(|s| {
                let mut r = BufReader::new(&s);
                let mut w = BufWriter::new(&s);
                wire::write_request(&mut w, &Request::Ping)
                    .and_then(|()| w.flush())
                    .and_then(|()| wire::read_response(&mut r))
                    .is_err()
            })
            .unwrap_or(true);
        assert!(refused, "server still answering after shutdown");
    }
}
