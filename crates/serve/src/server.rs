//! The query front-end: serves the wire protocol over TCP or Unix
//! sockets, one connection-handler thread per client, all sharing one
//! [`ShardedEngine`].

use crate::wire::{self, Request, Response, StatsReply};
use crate::ShardedEngine;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::Arc;

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A prediction server bound to a socket, not yet accepting.
///
/// [`run`](Server::run) accepts forever; spawn it on a thread to serve in
/// the background (see the crate-level example).
pub struct Server {
    listener: Listener,
    engine: Arc<ShardedEngine>,
}

impl Server {
    /// Binds a TCP listener (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind_tcp<A: ToSocketAddrs>(addr: A, engine: Arc<ShardedEngine>) -> io::Result<Self> {
        Ok(Server {
            listener: Listener::Tcp(TcpListener::bind(addr)?),
            engine,
        })
    }

    /// Binds a Unix-domain socket listener at `path`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (e.g. the path already exists).
    #[cfg(unix)]
    pub fn bind_unix<P: AsRef<std::path::Path>>(
        path: P,
        engine: Arc<ShardedEngine>,
    ) -> io::Result<Self> {
        Ok(Server {
            listener: Listener::Unix(UnixListener::bind(path)?),
            engine,
        })
    }

    /// The bound TCP address (for ephemeral-port binds).
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::Unsupported`] for Unix-socket servers.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr(),
            #[cfg(unix)]
            Listener::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-socket server has no TCP address",
            )),
        }
    }

    /// Accepts connections forever, one handler thread per client.
    ///
    /// # Errors
    ///
    /// Returns only on a fatal accept error; per-connection I/O errors
    /// just end that connection.
    pub fn run(self) -> io::Result<()> {
        match self.listener {
            Listener::Tcp(listener) => loop {
                let (stream, _) = listener.accept()?;
                stream.set_nodelay(true)?;
                let engine = Arc::clone(&self.engine);
                std::thread::spawn(move || {
                    let reader = BufReader::new(&stream);
                    let writer = BufWriter::new(&stream);
                    let _ = serve_connection(reader, writer, &engine);
                });
            },
            #[cfg(unix)]
            Listener::Unix(listener) => loop {
                let (stream, _) = listener.accept()?;
                let engine = Arc::clone(&self.engine);
                std::thread::spawn(move || {
                    let reader = BufReader::new(&stream);
                    let writer = BufWriter::new(&stream);
                    let _ = serve_connection(reader, writer, &engine);
                });
            },
        }
    }
}

/// Serves one connection until EOF: read a request frame, answer it,
/// flush. Malformed-but-framed requests get a [`Response::Error`] and the
/// connection continues; transport-level errors (bad checksum, mid-frame
/// EOF) end it, since framing can no longer be trusted.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn serve_connection<R: Read, W: Write>(
    mut reader: R,
    mut writer: W,
    engine: &ShardedEngine,
) -> io::Result<()> {
    loop {
        let payload = match wire::read_frame(&mut reader)? {
            Some(p) => p,
            None => return Ok(()), // clean EOF
        };
        let response = match wire::decode_request(&payload) {
            Ok(request) => answer(engine, request),
            Err(e) => Response::Error(e.to_string()),
        };
        wire::write_response(&mut writer, &response)?;
        writer.flush()?;
    }
}

/// Computes the response to one request.
pub fn answer(engine: &ShardedEngine, request: Request) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Predict(probe) => Response::Prediction(engine.predict(&probe)),
        Request::PredictBatch(probes) => Response::PredictionBatch(engine.predict_batch(&probes)),
        Request::Stats => Response::Stats(StatsReply::from_snapshot(
            &engine.scheme().to_string(),
            engine.nodes(),
            engine.shard_count(),
            &engine.stats(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Client, Probe};
    use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};

    fn engine() -> Arc<ShardedEngine> {
        let engine = ShardedEngine::new("last(pid)1[direct]".parse().unwrap(), 16, 2);
        for pid in 0..16u8 {
            engine.ingest_event(&SharingEvent::new(
                NodeId(pid),
                Pc(0),
                LineAddr(0),
                NodeId(0),
                SharingBitmap::singleton(NodeId(15 - pid)),
                Some((NodeId(pid), Pc(0))),
            ));
        }
        engine.flush();
        Arc::new(engine)
    }

    fn probe(pid: u8) -> Probe {
        Probe::new(NodeId(pid), Pc(0), NodeId(0), LineAddr(0))
    }

    #[test]
    fn tcp_round_trip_single_batch_and_stats() {
        let server = Server::bind_tcp("127.0.0.1:0", engine()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let mut client = Client::connect_tcp(addr).unwrap();
        client.ping().unwrap();
        assert_eq!(
            client.predict(&probe(3)).unwrap(),
            SharingBitmap::singleton(NodeId(12))
        );
        let batch: Vec<Probe> = (0..16).map(probe).collect();
        let preds = client.predict_batch(&batch).unwrap();
        for (pid, pred) in preds.iter().enumerate() {
            assert_eq!(*pred, SharingBitmap::singleton(NodeId(15 - pid as u8)));
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.scheme, "last(pid)[direct]");
        assert_eq!(stats.nodes, 16);
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.updates, 16);
        assert!(stats.queries >= 17); // 1 single + 16 batch
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path =
            std::env::temp_dir().join(format!("csp-served-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let server = Server::bind_unix(&path, engine()).unwrap();
        let server_path = path.clone();
        std::thread::spawn(move || server.run());

        let mut client = Client::connect_unix(&server_path).unwrap();
        client.ping().unwrap();
        assert_eq!(
            client.predict(&probe(0)).unwrap(),
            SharingBitmap::singleton(NodeId(15))
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_request_gets_error_and_connection_survives() {
        let server = Server::bind_tcp("127.0.0.1:0", engine()).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let stream = std::net::TcpStream::connect(addr).unwrap();
        let mut writer = BufWriter::new(&stream);
        let mut reader = BufReader::new(&stream);
        // A well-framed but unknown request type.
        wire::write_frame(&mut writer, &[0x7E, 1, 2]).unwrap();
        writer.flush().unwrap();
        let resp = wire::read_response(&mut reader).unwrap();
        assert!(matches!(resp, Response::Error(_)), "got {resp:?}");
        // The connection still answers real requests.
        wire::write_request(&mut writer, &Request::Ping).unwrap();
        writer.flush().unwrap();
        assert_eq!(wire::read_response(&mut reader).unwrap(), Response::Pong);
    }
}
