//! Leader/follower replication for the sharded serving engine.
//!
//! One process — the *leader* — owns the write path: every mutating
//! operation (trace replay warm-up, live [`crate::wire::Request::Ingest`]
//! frames) is appended to a durable, totally-ordered *replication log*
//! before it is dispatched to the shards. Followers bootstrap from a
//! shipped `CSPSNAP1` snapshot whose sequence number *is* a log offset,
//! subscribe to the leader over the wire protocol, and apply the same
//! operations in the same order — which makes their screening statistics
//! and predictions bit-identical to the leader's (proved end-to-end in
//! `tests/replication.rs` and `csp-harness`).
//!
//! # The log
//!
//! The unit of replication is [`ReplOp`]: a predictor update or a scored
//! decision, already resolved to its table key, 17 bytes on the wire and
//! on disk. Offsets count operations from the beginning of history.
//! Appends happen under one mutex held across *journal write → shard
//! dispatch → in-memory publish*, so the log order, the per-shard apply
//! order, and what a snapshot can observe are all the same total order —
//! the same argument that makes sharded replay bit-identical to the
//! offline engine extends to replicas.
//!
//! Durability uses [`csp_trace::journal`] files in the snapshot
//! directory: flushed per append, torn-tail tolerant, and always rotated
//! to a *new* file on startup and on snapshot so a torn tail is never
//! appended past.
//!
//! # Failure model
//!
//! * **Leader killed (even `kill -9`)**: restart restores the newest
//!   snapshot and replays the journal tail beyond its sequence number;
//!   acknowledged ingests are journaled first, so they survive.
//! * **Follower disconnected**: it keeps serving stale-but-consistent
//!   predictions, reconnects with exponential backoff + jitter, and
//!   resumes from its last durable offset.
//! * **Divergence** (scheme, width, or format drift): detected by a
//!   [`fingerprint`] carried in every Subscribe/Ingest/JournalSegment
//!   frame and journal header; the mismatching side refuses the data.
//!
//! # Failover
//!
//! Every log carries an **epoch** — a fencing term, bumped on each
//! promotion and embedded in journal headers and every replication
//! frame. A follower can be *promoted*: its durable journal is already a
//! verified copy of the leader's history, so promotion is
//! [`ReplicationLog::bump_epoch`] (rotating the journal so the new term
//! is durable) plus flipping the engine out of follower mode. Peers fence
//! the deposed leader by epoch: followers drop streams that regress the
//! epoch they have observed, and `Ingest` frames carrying a stale epoch
//! are refused with a typed error.
//!
//! Failure detection is **lease-based**: every `JournalSegment` frame
//! (heartbeats included) grants the subscriber a time-boxed lease on the
//! leader's liveness; a lease that lapses without renewal is the signal
//! that drives (manual or rank-ordered automatic) promotion. The leader
//! mirrors this: each live subscriber holds a lease on the journal
//! horizon, so compaction never reclaims operations a live downstream
//! still needs ([`ReplicationLog::compact`] floors at the slowest live
//! lease and reports what laggards pin).

use crate::error::ServeError;
use crate::server::ShutdownHandle;
use crate::shard::{IngestOp, ShardedEngine};
use crate::snapshot::EngineState;
use crate::wire::{self, Request, Response, SegmentFrame};
use csp_core::{PreparedTrace, Scheme};
use csp_obs::Registry;
use csp_trace::journal::{read_journal, JournalHeader, SegmentWriter};
use csp_trace::{crc32c, SharingBitmap};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// Encoded size of one [`ReplOp`]: tag, key, bitmap.
pub const REPL_OP_LEN: usize = 17;

/// Most operations one wire frame or journal segment may carry
/// (`32768 × 17 B ≈ 544 KiB`, comfortably under the 1 MiB frame cap).
pub const MAX_SEGMENT_OPS: usize = 32 * 1024;

/// Bumped whenever the replicated operation stream changes meaning;
/// part of the [`fingerprint`]. Revision 2 added epochs (fencing terms)
/// to every replication frame and journal header.
const REPL_REVISION: u32 = 2;

/// Default lease a leader grants each subscriber per segment/heartbeat,
/// and the staleness horizon a follower allows before it considers the
/// leader dead. Must comfortably exceed the 500 ms heartbeat interval.
pub const DEFAULT_LEASE: Duration = Duration::from_secs(10);

const TAG_UPDATE: u8 = 1;
const TAG_SCORE: u8 = 2;

/// One replicated mutation, resolved to its predictor key so leader and
/// follower cannot derive keys differently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplOp {
    /// Shift `feedback` into `key`'s predictor entry.
    Update {
        /// The predictor index key to train.
        key: u64,
        /// The invalidation feedback bitmap.
        feedback: SharingBitmap,
    },
    /// Predict through `key`'s entry and score against `actual`.
    Score {
        /// The predictor index key to consult.
        key: u64,
        /// The ground-truth reader bitmap.
        actual: SharingBitmap,
    },
}

impl ReplOp {
    /// Appends this operation's 17-byte encoding to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let (tag, key, bits) = match *self {
            ReplOp::Update { key, feedback } => (TAG_UPDATE, key, feedback.bits()),
            ReplOp::Score { key, actual } => (TAG_SCORE, key, actual.bits()),
        };
        buf.push(tag);
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&bits.to_le_bytes());
    }

    /// Decodes one operation from exactly [`REPL_OP_LEN`] bytes.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] on a wrong length or unknown tag.
    pub fn decode(b: &[u8]) -> io::Result<ReplOp> {
        if b.len() != REPL_OP_LEN {
            return Err(bad_data(format!(
                "replication op is {REPL_OP_LEN} bytes, got {}",
                b.len()
            )));
        }
        let key = u64::from_le_bytes([b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8]]);
        let bits = u64::from_le_bytes([b[9], b[10], b[11], b[12], b[13], b[14], b[15], b[16]]);
        match b[0] {
            TAG_UPDATE => Ok(ReplOp::Update {
                key,
                feedback: SharingBitmap::from_bits(bits),
            }),
            TAG_SCORE => Ok(ReplOp::Score {
                key,
                actual: SharingBitmap::from_bits(bits),
            }),
            tag => Err(bad_data(format!("unknown replication op tag {tag:#04x}"))),
        }
    }

    /// The shard-inbox operation this replicated op applies as.
    pub fn to_ingest(&self) -> IngestOp {
        match *self {
            ReplOp::Update { key, feedback } => IngestOp::Update { key, feedback },
            ReplOp::Score { key, actual } => IngestOp::Score { key, actual },
        }
    }

    /// The replicated form of a shard operation; `None` for operations
    /// that do not mutate replicated state (e.g. the test-only poison).
    pub fn from_ingest(op: &IngestOp) -> Option<ReplOp> {
        match *op {
            IngestOp::Update { key, feedback } => Some(ReplOp::Update { key, feedback }),
            IngestOp::Score { key, actual } => Some(ReplOp::Score { key, actual }),
            IngestOp::Poison { .. } => None,
        }
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Packs `ops` into their contiguous 17-byte-per-op encoding.
pub fn encode_ops(ops: &[ReplOp]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(ops.len() * REPL_OP_LEN);
    for op in ops {
        op.encode_into(&mut buf);
    }
    buf
}

/// Decodes `count` operations from `records`, validating the count
/// against the byte length *before* allocating.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] when the count exceeds
/// [`MAX_SEGMENT_OPS`], disagrees with the byte length, or any op is
/// malformed.
pub fn decode_ops(count: u32, records: &[u8]) -> io::Result<Vec<ReplOp>> {
    let count = count as usize;
    if count > MAX_SEGMENT_OPS {
        return Err(bad_data(format!(
            "segment claims {count} ops, limit is {MAX_SEGMENT_OPS}"
        )));
    }
    if records.len() != count * REPL_OP_LEN {
        return Err(bad_data(format!(
            "segment claims {count} ops but carries {} bytes",
            records.len()
        )));
    }
    records
        .chunks_exact(REPL_OP_LEN)
        .map(ReplOp::decode)
        .collect()
}

/// Compatibility fingerprint negotiated by every replication exchange:
/// CRC32c over the scheme's canonical notation, the machine width, and
/// the format revisions, so any drift in table layout, trace semantics,
/// or wire encoding between two processes is detected before a single
/// operation crosses.
pub fn fingerprint(scheme: &Scheme, nodes: usize) -> u32 {
    let canon = format!("csp-repl|rev{REPL_REVISION}|{scheme}|{nodes}|snap1|jrnl1");
    crc32c::checksum(canon.as_bytes())
}

/// A slice of the log handed to one subscriber: operations
/// `[start, start + ops.len())`, plus the leader's head at read time.
/// An empty segment is a heartbeat — proof the leader is alive and the
/// subscriber is caught up to `head`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Segment {
    /// The serving log's epoch when the segment was cut.
    pub epoch: u64,
    /// Offset of the first operation in `ops`.
    pub start: u64,
    /// The leader's log head when the segment was cut.
    pub head: u64,
    /// The operations, in log order.
    pub ops: Vec<ReplOp>,
}

/// Why a subscriber's offset cannot be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentError {
    /// The offset predates the oldest operation the leader retains
    /// (pruned after snapshots): the subscriber must re-bootstrap from a
    /// newer snapshot.
    TooOld {
        /// The oldest offset still served.
        oldest: u64,
    },
    /// The offset is beyond the leader's head: the subscriber has
    /// history this leader never wrote — divergence.
    Ahead {
        /// The leader's current head.
        head: u64,
    },
}

struct DurableTail {
    store: JournalStore,
    writer: SegmentWriter<BufWriter<File>>,
}

struct LogInner {
    /// Offset of `ops[0]`; operations below it have been pruned.
    base: u64,
    ops: VecDeque<ReplOp>,
    durable: Option<DurableTail>,
    /// The current fencing term; mirrored into `epoch_cell` for
    /// lock-free reads.
    epoch: u64,
}

/// One downstream subscriber's claim on the journal horizon.
struct Lease {
    /// The lowest offset the subscriber may still ask for.
    offset: u64,
    /// When the claim lapses unless renewed by a successful send.
    expires: Instant,
}

/// A live subscriber's handle on its compaction lease. Release it with
/// [`ReplicationLog::lease_release`] when the stream ends; an unreleased
/// lease merely expires after its TTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseId(u64);

/// What one [`ReplicationLog::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// The floor actually applied (the requested floor, lowered to the
    /// slowest live downstream lease).
    pub floor: u64,
    /// Journal-file bytes reclaimed from disk.
    pub reclaimed_bytes: u64,
    /// Journal-file bytes that would have been reclaimed at the
    /// requested floor but are pinned by a live downstream lease.
    pub held_bytes: u64,
}

/// The leader's totally-ordered operation log: the serialization point
/// for every mutation, the durability boundary for ingest acks, and the
/// source subscribers stream from.
pub struct ReplicationLog {
    fingerprint: u32,
    inner: Mutex<LogInner>,
    grew: Condvar,
    /// Mirror of `LogInner::epoch` for lock-free reads.
    epoch_cell: AtomicU64,
    /// Live downstream leases, keyed by [`LeaseId`].
    leases: Mutex<HashMap<u64, Lease>>,
    lease_seq: AtomicU64,
    lease_ttl_ms: AtomicU64,
    /// Bytes the last compaction left on disk only because a live lease
    /// pinned them (the `csp_repl_compact_held_bytes` gauge).
    held_bytes: AtomicU64,
}

impl std::fmt::Debug for ReplicationLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationLog")
            .field("fingerprint", &self.fingerprint)
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

impl ReplicationLog {
    fn build(fingerprint: u32, inner: LogInner) -> Arc<Self> {
        let epoch = inner.epoch;
        Arc::new(ReplicationLog {
            fingerprint,
            inner: Mutex::new(inner),
            grew: Condvar::new(),
            epoch_cell: AtomicU64::new(epoch),
            leases: Mutex::new(HashMap::new()),
            lease_seq: AtomicU64::new(0),
            lease_ttl_ms: AtomicU64::new(DEFAULT_LEASE.as_millis() as u64),
            held_bytes: AtomicU64::new(0),
        })
    }

    /// A log with no on-disk journal (tests, the in-process harness),
    /// starting at offset 0 under epoch 1.
    pub fn in_memory(fingerprint: u32) -> Arc<Self> {
        Self::in_memory_at(fingerprint, 0, 1)
    }

    /// An in-memory log resuming at `base` under `epoch` — a journal-less
    /// follower bootstrapped from a snapshot attaches one of these so it
    /// can relay segments downstream.
    pub fn in_memory_at(fingerprint: u32, base: u64, epoch: u64) -> Arc<Self> {
        Self::build(
            fingerprint,
            LogInner {
                base,
                ops: VecDeque::new(),
                durable: None,
                epoch,
            },
        )
    }

    /// A journal-backed log seeded with what [`JournalStore::recover_all`]
    /// found; opens a fresh journal file at the recovered head (never
    /// appending past a torn tail) under the recovered epoch (floored at
    /// 1 — epoch 0 is reserved for "no claim").
    ///
    /// # Errors
    ///
    /// Propagates journal-file I/O failures.
    pub fn durable(store: JournalStore, recovered: &Recovered) -> Result<Arc<Self>, ServeError> {
        Self::durable_at_epoch(store, recovered, recovered.epoch.max(1))
    }

    /// As [`durable`](Self::durable) but opening under an explicit
    /// `epoch` — the promotion path passes the recovered epoch plus one.
    ///
    /// # Errors
    ///
    /// Propagates journal-file I/O failures.
    pub fn durable_at_epoch(
        store: JournalStore,
        recovered: &Recovered,
        epoch: u64,
    ) -> Result<Arc<Self>, ServeError> {
        let head = recovered.head();
        let writer = store.create_writer(head, epoch)?;
        Ok(Self::build(
            store.fingerprint,
            LogInner {
                base: recovered.base,
                ops: recovered.ops.iter().copied().collect(),
                durable: Some(DurableTail { store, writer }),
                epoch,
            },
        ))
    }

    /// The compatibility fingerprint this log was opened under.
    pub fn fingerprint(&self) -> u32 {
        self.fingerprint
    }

    /// The current fencing term. Leaders author segments under it;
    /// followers track the highest epoch they have observed.
    pub fn epoch(&self) -> u64 {
        self.epoch_cell.load(Ordering::SeqCst)
    }

    /// Adopts `epoch` if it is newer than the current term, rotating the
    /// journal so the adoption is durable (a restarted follower must not
    /// trust a leader it already saw deposed). Returns whether the term
    /// advanced.
    ///
    /// # Errors
    ///
    /// Propagates journal rotation failures (the epoch is *not* adopted
    /// then, so the durable and in-memory terms never disagree).
    pub fn observe_epoch(&self, epoch: u64) -> Result<bool, ServeError> {
        let mut inner = self.lock();
        if epoch <= inner.epoch {
            return Ok(false);
        }
        let head = inner.base + inner.ops.len() as u64;
        if let Some(d) = inner.durable.as_mut() {
            d.writer = d.store.create_writer(head, epoch)?;
        }
        inner.epoch = epoch;
        self.epoch_cell.store(epoch, Ordering::SeqCst);
        Ok(true)
    }

    /// Promotes this log to a new term: the new epoch is
    /// `max(current + 1, at_least)`, made durable by rotating the
    /// journal before it is published. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// Propagates journal rotation failures (the term does not advance).
    pub fn bump_epoch(&self, at_least: u64) -> Result<u64, ServeError> {
        let mut inner = self.lock();
        let next = (inner.epoch + 1).max(at_least);
        let head = inner.base + inner.ops.len() as u64;
        if let Some(d) = inner.durable.as_mut() {
            d.writer = d.store.create_writer(head, next)?;
        }
        inner.epoch = next;
        self.epoch_cell.store(next, Ordering::SeqCst);
        Ok(next)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LogInner> {
        self.inner.lock().expect("replication log poisoned")
    }

    /// The next offset to be appended (operations `[0, head)` exist).
    pub fn head(&self) -> u64 {
        let inner = self.lock();
        inner.base + inner.ops.len() as u64
    }

    /// The oldest offset still served to subscribers.
    pub fn oldest(&self) -> u64 {
        self.lock().base
    }

    /// Appends `ops` and dispatches them while holding the log lock:
    /// journal write (durability), then `dispatch` (shard FIFOs), then
    /// in-memory publish, all in one critical section — which is what
    /// makes the log order and the apply order the same total order.
    /// Returns the new head and `dispatch`'s result.
    ///
    /// # Errors
    ///
    /// A journal write failure aborts the append *before* dispatch: the
    /// operation is applied nowhere, so leader and followers still agree.
    pub fn append_with<R>(
        &self,
        ops: &[ReplOp],
        dispatch: impl FnOnce() -> R,
    ) -> io::Result<(u64, R)> {
        let mut inner = self.lock();
        if !ops.is_empty() {
            if let Some(d) = inner.durable.as_mut() {
                for chunk in ops.chunks(MAX_SEGMENT_OPS) {
                    d.writer.append(chunk.len() as u32, &encode_ops(chunk))?;
                }
            }
        }
        let out = dispatch();
        inner.ops.extend(ops.iter().copied());
        let head = inner.base + inner.ops.len() as u64;
        drop(inner);
        self.grew.notify_all();
        Ok((head, out))
    }

    /// Runs `f` with the head while holding the log lock, excluding all
    /// appends: anything `f` observes through in-band shard messages
    /// (e.g. a state capture) is an exact cut at that head.
    pub fn freeze<R>(&self, f: impl FnOnce(u64) -> R) -> R {
        let inner = self.lock();
        let head = inner.base + inner.ops.len() as u64;
        f(head)
    }

    /// Cuts the next segment for a subscriber at `from`: up to `max_ops`
    /// operations if any are ready, otherwise blocks up to `timeout` and
    /// returns an empty heartbeat segment.
    ///
    /// # Errors
    ///
    /// [`SegmentError`] when `from` has been pruned or is ahead of the
    /// head — both mean this subscriber cannot be served incrementally.
    pub fn wait_segment(
        &self,
        from: u64,
        max_ops: usize,
        timeout: Duration,
    ) -> Result<Segment, SegmentError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            let head = inner.base + inner.ops.len() as u64;
            if from < inner.base {
                return Err(SegmentError::TooOld { oldest: inner.base });
            }
            if from > head {
                return Err(SegmentError::Ahead { head });
            }
            if from < head {
                let skip = (from - inner.base) as usize;
                let take = ((head - from) as usize).min(max_ops);
                let ops = inner.ops.iter().skip(skip).take(take).copied().collect();
                return Ok(Segment {
                    epoch: inner.epoch,
                    start: from,
                    head,
                    ops,
                });
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(Segment {
                    epoch: inner.epoch,
                    start: from,
                    head,
                    ops: Vec::new(),
                });
            }
            let (guard, _) = self
                .grew
                .wait_timeout(inner, deadline - now)
                .expect("replication log poisoned");
            inner = guard;
        }
    }

    /// Grants a time-boxed downstream lease at `offset`: until it
    /// expires (or is released), [`compact`](Self::compact) will not
    /// reclaim operations at or above `offset`. Subscribers renew by
    /// calling [`lease_renew`](Self::lease_renew) after each shipped
    /// segment.
    pub fn lease_grant(&self, offset: u64) -> LeaseId {
        let id = self.lease_seq.fetch_add(1, Ordering::SeqCst);
        let mut leases = self.leases.lock().expect("lease table poisoned");
        leases.insert(
            id,
            Lease {
                offset,
                expires: Instant::now() + self.lease_ttl(),
            },
        );
        LeaseId(id)
    }

    /// Advances a lease to `offset` and extends its expiry by the lease
    /// TTL. A lapsed lease is revived — the subscriber demonstrably
    /// still holds the stream.
    pub fn lease_renew(&self, id: LeaseId, offset: u64) {
        let mut leases = self.leases.lock().expect("lease table poisoned");
        leases.insert(
            id.0,
            Lease {
                offset,
                expires: Instant::now() + self.lease_ttl(),
            },
        );
    }

    /// Drops a lease; its offset no longer pins compaction.
    pub fn lease_release(&self, id: LeaseId) {
        let mut leases = self.leases.lock().expect("lease table poisoned");
        leases.remove(&id.0);
    }

    /// The number of live (unexpired) downstream leases.
    pub fn lease_count(&self) -> u64 {
        let now = Instant::now();
        let leases = self.leases.lock().expect("lease table poisoned");
        leases.values().filter(|l| l.expires > now).count() as u64
    }

    /// The slowest live lease offset, dropping expired entries.
    fn lease_floor(&self) -> Option<u64> {
        let now = Instant::now();
        let mut leases = self.leases.lock().expect("lease table poisoned");
        leases.retain(|_, l| l.expires > now);
        leases.values().map(|l| l.offset).min()
    }

    /// The duration a granted lease stays live without renewal.
    pub fn lease_ttl(&self) -> Duration {
        Duration::from_millis(self.lease_ttl_ms.load(Ordering::SeqCst))
    }

    /// Sets the lease TTL ([`DEFAULT_LEASE`] until then). Advertised to
    /// downstreams in every segment header, so their failure detectors
    /// and this log's compaction floor agree on when a claim lapses.
    /// Applies to leases granted or renewed from now on.
    pub fn set_lease_ttl(&self, ttl: Duration) {
        let ms = u64::try_from(ttl.as_millis()).unwrap_or(u64::MAX).max(1);
        self.lease_ttl_ms.store(ms, Ordering::SeqCst);
    }

    /// Bytes the last compaction pass left on disk only because a live
    /// downstream lease pinned them.
    pub fn held_bytes(&self) -> u64 {
        self.held_bytes.load(Ordering::SeqCst)
    }

    /// Called after a snapshot at sequence `floor` became durable:
    /// rotates the journal to a fresh file at the head and drops
    /// operations below the effective floor from memory and disk —
    /// followers older than the snapshot horizon re-bootstrap instead.
    ///
    /// The effective floor is `floor` lowered to the slowest live
    /// downstream lease, so a segment a live subscriber may still ask
    /// for is never reclaimed; bytes pinned that way are reported in
    /// [`CompactStats::held_bytes`] (and the
    /// `csp_repl_compact_held_bytes` gauge).
    ///
    /// # Errors
    ///
    /// Propagates journal rotation failures (the in-memory log is left
    /// consistent either way). A segment file that vanishes mid-prune —
    /// e.g. a racing unlink — is tolerated, not an error.
    pub fn compact(&self, floor: u64) -> Result<CompactStats, ServeError> {
        let mut inner = self.lock();
        let head = inner.base + inner.ops.len() as u64;
        let requested = floor.min(head);
        let effective = match self.lease_floor() {
            Some(leased) => requested.min(leased),
            None => requested,
        };
        let mut stats = CompactStats {
            floor: effective,
            reclaimed_bytes: 0,
            held_bytes: 0,
        };
        let base = inner.base;
        let epoch = inner.epoch;
        if let Some(d) = inner.durable.as_mut() {
            if effective > base {
                d.writer = d.store.create_writer(head, epoch)?;
                stats.reclaimed_bytes = d.store.prune_below(effective)?;
            }
            if effective < requested {
                stats.held_bytes = d.store.bytes_below(requested).unwrap_or(0);
            }
        }
        self.held_bytes.store(stats.held_bytes, Ordering::SeqCst);
        while inner.base < effective {
            inner.ops.pop_front();
            inner.base += 1;
        }
        Ok(stats)
    }

    /// Registers this log's gauges — current epoch, live downstream
    /// leases, and compaction bytes held by laggards — on `registry`.
    pub fn bind_metrics(self: &Arc<Self>, registry: &Registry) {
        let log = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_epoch",
            "Current replication fencing epoch",
            &[],
            move || log.epoch() as i64,
        );
        let log = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_downstream_leases",
            "Live downstream subscriber leases",
            &[],
            move || log.lease_count() as i64,
        );
        let log = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_compact_held_bytes",
            "Journal bytes pinned by the slowest live downstream lease",
            &[],
            move || log.held_bytes() as i64,
        );
    }
}

/// What [`JournalStore::recover_all`] reconstructed from disk.
#[derive(Clone, Debug, Default)]
pub struct Recovered {
    /// Offset of `ops[0]` (the oldest retained operation).
    pub base: u64,
    /// Every durable operation from `base`, in log order.
    pub ops: Vec<ReplOp>,
    /// The highest fencing epoch any journal file was written under
    /// (0 for pre-epoch `CSPJRNL1` journals and empty directories).
    pub epoch: u64,
}

impl Recovered {
    /// The durable head: the offset after the last recovered operation.
    pub fn head(&self) -> u64 {
        self.base + self.ops.len() as u64
    }

    /// The operations at or beyond `offset` (e.g. the tail a
    /// snapshot-restored engine still needs).
    pub fn tail_from(&self, offset: u64) -> &[ReplOp] {
        if offset <= self.base {
            return &self.ops;
        }
        let skip = (offset - self.base) as usize;
        self.ops.get(skip..).unwrap_or(&[])
    }
}

/// The on-disk journal directory: `journal-<start:020>.cspjrnl` files
/// ([`csp_trace::journal`] format) alongside the snapshots, each named
/// by the log offset of its first operation.
#[derive(Debug)]
pub struct JournalStore {
    dir: PathBuf,
    fingerprint: u32,
}

impl JournalStore {
    /// Opens (creating if needed) the journal directory.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, fingerprint: u32) -> Result<Self, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| ServeError::io(&dir, e))?;
        Ok(JournalStore { dir, fingerprint })
    }

    /// The directory journal files live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, start: u64) -> PathBuf {
        self.dir.join(format!("journal-{start:020}.cspjrnl"))
    }

    fn parse_start(path: &Path) -> Option<u64> {
        path.file_name()?
            .to_str()?
            .strip_prefix("journal-")?
            .strip_suffix(".cspjrnl")?
            .parse()
            .ok()
    }

    fn list(&self) -> Result<Vec<(u64, PathBuf)>, ServeError> {
        let mut files = Vec::new();
        let entries = std::fs::read_dir(&self.dir).map_err(|e| ServeError::io(&self.dir, e))?;
        for entry in entries {
            let path = entry.map_err(|e| ServeError::io(&self.dir, e))?.path();
            if let Some(start) = Self::parse_start(&path) {
                files.push((start, path));
            }
        }
        files.sort();
        Ok(files)
    }

    /// Replays every retained journal file into one contiguous operation
    /// list, verifying fingerprints, file continuity, and segment
    /// checksums. A torn tail on the *newest* file is tolerated (the
    /// crash the journal exists for); damage anywhere else is an error.
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] on foreign fingerprints, offset gaps,
    /// or mid-history damage; [`ServeError::Io`] on transport failures.
    pub fn recover_all(&self) -> Result<Recovered, ServeError> {
        let files = self.list()?;
        let Some(&(base, _)) = files.first() else {
            return Ok(Recovered::default());
        };
        let mut ops = Vec::new();
        let mut epoch = 0u64;
        let last = files.len() - 1;
        for (i, (start, path)) in files.iter().enumerate() {
            let expected = base + ops.len() as u64;
            if *start != expected {
                return Err(ServeError::Replication {
                    detail: format!(
                        "journal gap: {} starts at offset {start}, expected {expected}",
                        path.display()
                    ),
                });
            }
            let file = File::open(path).map_err(|e| ServeError::io(path, e))?;
            let contents =
                read_journal(BufReader::new(file)).map_err(|e| ServeError::io(path, e))?;
            if contents.header.fingerprint != self.fingerprint {
                return Err(ServeError::Replication {
                    detail: format!(
                        "{} was written under fingerprint {:#010x}, ours is {:#010x} \
                         (scheme, width, or format drift)",
                        path.display(),
                        contents.header.fingerprint,
                        self.fingerprint
                    ),
                });
            }
            if contents.header.start_offset != *start {
                return Err(ServeError::Replication {
                    detail: format!(
                        "{} header claims offset {}, filename says {start}",
                        path.display(),
                        contents.header.start_offset
                    ),
                });
            }
            if contents.torn && i != last {
                return Err(ServeError::Replication {
                    detail: format!(
                        "{} has a torn segment but newer journal files exist",
                        path.display()
                    ),
                });
            }
            epoch = epoch.max(contents.header.epoch);
            for seg in &contents.segments {
                let decoded =
                    decode_ops(seg.count, &seg.records).map_err(|e| ServeError::io(path, e))?;
                ops.extend(decoded);
            }
        }
        Ok(Recovered { base, ops, epoch })
    }

    /// Starts a new journal file whose first operation will be `start`,
    /// stamped with the fencing `epoch` it is written under.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the file cannot be created.
    pub fn create_writer(
        &self,
        start: u64,
        epoch: u64,
    ) -> Result<SegmentWriter<BufWriter<File>>, ServeError> {
        let path = self.path_for(start);
        let file = File::create(&path).map_err(|e| ServeError::io(&path, e))?;
        SegmentWriter::create(
            BufWriter::new(file),
            &JournalHeader {
                fingerprint: self.fingerprint,
                start_offset: start,
                epoch,
            },
        )
        .map_err(|e| ServeError::io(&path, e))
    }

    /// Deletes journal files made wholly redundant by a durable snapshot
    /// at `floor` (a file goes once the *next* file starts at or below
    /// `floor`; the newest file always stays). Returns the bytes
    /// reclaimed from disk.
    ///
    /// A file that vanishes between listing and unlinking — a racing
    /// compactor, an operator `rm` — is treated as already reclaimed by
    /// someone else, not an error; likewise a journal directory that was
    /// removed wholesale yields 0 rather than failing.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when a redundant file exists but cannot be
    /// removed (permissions, I/O faults).
    pub fn prune_below(&self, floor: u64) -> Result<u64, ServeError> {
        let files = match self.list() {
            Ok(files) => files,
            Err(ServeError::Io { source, .. }) if source.kind() == io::ErrorKind::NotFound => {
                return Ok(0);
            }
            Err(e) => return Err(e),
        };
        let mut reclaimed = 0u64;
        for pair in files.windows(2) {
            if pair[1].0 <= floor {
                let path = &pair[0].1;
                let len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                match std::fs::remove_file(path) {
                    Ok(()) => reclaimed += len,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(ServeError::io(path, e)),
                }
            }
        }
        Ok(reclaimed)
    }

    /// The on-disk bytes of journal files wholly below `floor` (the
    /// files [`prune_below`](Self::prune_below) would delete) — what a
    /// laggard lease is currently pinning.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on directory-listing failures other than a
    /// missing directory (which yields 0).
    pub fn bytes_below(&self, floor: u64) -> Result<u64, ServeError> {
        let files = match self.list() {
            Ok(files) => files,
            Err(ServeError::Io { source, .. }) if source.kind() == io::ErrorKind::NotFound => {
                return Ok(0);
            }
            Err(e) => return Err(e),
        };
        let mut pinned = 0u64;
        for pair in files.windows(2) {
            if pair[1].0 <= floor {
                pinned += std::fs::metadata(&pair[0].1).map(|m| m.len()).unwrap_or(0);
            }
        }
        Ok(pinned)
    }
}

/// The exact operation stream [`ShardedEngine::replay_range`] would
/// dispatch for events `range` of a prepared trace — the producer side
/// of push-based ingest. A remote producer that pushes these operations
/// through [`crate::Client::ingest`] trains the leader bit-identically
/// to a local file replay, because the actuals and keys come from the
/// same shared preparation.
///
/// # Panics
///
/// Panics if `range` is out of bounds for the prepared trace.
pub fn trace_to_ops(
    prepared: &PreparedTrace<'_>,
    scheme: &Scheme,
    range: Range<usize>,
) -> Vec<ReplOp> {
    crate::shard::replay_ops(prepared, scheme, range)
        .iter()
        .filter_map(ReplOp::from_ingest)
        .collect()
}

/// Captures engine state as an exact cut at the replication log's head,
/// with the head as the snapshot sequence number — so the snapshot *is*
/// a resume offset: a follower restoring it subscribes from `seq`.
///
/// # Errors
///
/// [`ServeError::Replication`] when no log is attached to the engine.
pub fn snapshot_at_head(engine: &ShardedEngine) -> Result<EngineState, ServeError> {
    let log = engine
        .replication()
        .ok_or_else(|| ServeError::Replication {
            detail: "cannot cut a replicated snapshot: no log attached".to_string(),
        })?;
    Ok(log.freeze(|head| EngineState::capture(engine, head)))
}

/// Live health of one follower, shared between the streaming thread and
/// the metrics registry (see [`ReplicaStatus::bind_metrics`]).
#[derive(Debug, Default)]
pub struct ReplicaStatus {
    applied: AtomicU64,
    leader_head: AtomicU64,
    connected: AtomicU64,
    reconnects: AtomicU64,
    resyncs: AtomicU64,
    diverged: AtomicU64,
    last_segment_unix_ms: AtomicU64,
    lease_ms: AtomicU64,
}

impl ReplicaStatus {
    /// A fresh status starting from `applied` (the bootstrap offset).
    pub fn new(applied: u64) -> Arc<Self> {
        let status = ReplicaStatus::default();
        status.applied.store(applied, Ordering::Relaxed);
        status.leader_head.store(applied, Ordering::Relaxed);
        Arc::new(status)
    }

    /// Offset this follower has durably applied.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// The leader's head as of the last segment (heartbeats count).
    pub fn leader_head(&self) -> u64 {
        self.leader_head.load(Ordering::Relaxed)
    }

    /// Operations the leader has that this follower has not applied.
    pub fn lag(&self) -> u64 {
        self.leader_head().saturating_sub(self.applied())
    }

    /// Whether a subscription is currently live.
    pub fn is_connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed) == 1
    }

    /// Connection attempts after the first (dials, not successes).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Successful resubscriptions after a drop — each one proves a
    /// resume from the durable offset.
    pub fn resyncs(&self) -> u64 {
        self.resyncs.load(Ordering::Relaxed)
    }

    /// Whether the follower has detected divergence from its leader.
    pub fn is_diverged(&self) -> bool {
        self.diverged.load(Ordering::Relaxed) == 1
    }

    /// The lease TTL (milliseconds) the leader advertised on the most
    /// recent segment; 0 until a fenced leader has been heard from.
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms.load(Ordering::Relaxed)
    }

    /// Milliseconds since the last segment (heartbeats included), or
    /// `None` before the first — the failure-detection clock: once this
    /// exceeds the advertised lease, the leader's claim has lapsed.
    pub fn last_segment_age_ms(&self) -> Option<u64> {
        let last = self.last_segment_unix_ms.load(Ordering::Relaxed);
        if last == 0 {
            None
        } else {
            Some(Self::now_ms().saturating_sub(last))
        }
    }

    fn now_ms() -> u64 {
        SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0)
    }

    /// Registers the replica-health series (`csp_repl_*` gauges and
    /// counters) on `registry`, typically the follower engine's own, so
    /// one `metrics` scrape covers replication lag, connectivity, and
    /// resync history — and `csp-served top` can render replica health.
    pub fn bind_metrics(self: &Arc<Self>, registry: &Registry) {
        let s = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_applied_offset",
            "Journal offset this follower has durably applied.",
            &[],
            move || s.applied() as i64,
        );
        let s = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_leader_offset",
            "Leader journal head as of the last received segment.",
            &[],
            move || s.leader_head() as i64,
        );
        let s = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_lag_ops",
            "Operations behind the leader (leader offset minus applied).",
            &[],
            move || s.lag() as i64,
        );
        let s = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_connected",
            "1 when a journal subscription is live, 0 while degraded to stale serving.",
            &[],
            move || i64::from(s.connected.load(Ordering::Relaxed) == 1),
        );
        let s = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_diverged",
            "1 after a fingerprint or offset divergence was detected.",
            &[],
            move || i64::from(s.is_diverged()),
        );
        let s = Arc::clone(self);
        registry.register_gauge_fn(
            "csp_repl_last_segment_age_seconds",
            "Seconds since the last journal segment (heartbeats included); -1 before the first.",
            &[],
            move || {
                let last = s.last_segment_unix_ms.load(Ordering::Relaxed);
                if last == 0 {
                    -1
                } else {
                    (Self::now_ms().saturating_sub(last) / 1000) as i64
                }
            },
        );
        let s = Arc::clone(self);
        registry.register_counter_fn(
            "csp_repl_reconnects_total",
            "Leader connection attempts after the first.",
            &[],
            move || s.reconnects(),
        );
        let s = Arc::clone(self);
        registry.register_counter_fn(
            "csp_repl_resyncs_total",
            "Successful resubscriptions after a disconnect (resume from durable offset).",
            &[],
            move || s.resyncs(),
        );
    }
}

/// Tuning for the follower's reconnect loop.
#[derive(Clone, Copy, Debug)]
pub struct FollowerOptions {
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed for the jitter added to each backoff (deterministic tests).
    pub jitter_seed: u64,
    /// Socket read timeout; must exceed the leader's heartbeat interval,
    /// so expiry means the leader is wedged, not merely idle.
    pub read_timeout: Duration,
    /// Socket write timeout for the subscribe handshake.
    pub write_timeout: Duration,
}

impl Default for FollowerOptions {
    fn default() -> Self {
        FollowerOptions {
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            jitter_seed: 0x5EED_CAFE,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Sleeps `dur` in small slices, returning early when shutdown fires.
fn interruptible_sleep(shutdown: &ShutdownHandle, dur: Duration) {
    let deadline = Instant::now() + dur;
    while !shutdown.is_shutdown() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        std::thread::sleep((deadline - now).min(Duration::from_millis(50)));
    }
}

/// The follower's streaming loop: subscribe at the attached log's head,
/// apply segments in order (journal first, then shards — through the
/// engine's attached [`ReplicationLog`], so downstream subscribers of
/// *this* node are fed the same total order), and on any failure degrade
/// to serving stale-but-consistent predictions while reconnecting with
/// exponential backoff + jitter. Runs until `shutdown` fires; `leader`
/// is re-queried on every dial so the leader address may move (e.g. a
/// failover rewriting an address file).
///
/// Epoch fencing: segments carrying a *lower* epoch than the log has
/// observed come from a deposed leader — the connection is dropped (and
/// re-dialed, picking up the re-parented address) without applying
/// anything. A *higher* epoch is durably adopted before its first
/// operation is applied.
///
/// The engine must have been marked a follower and must have a
/// replication log attached (the relay point for chained fan-out).
///
/// # Errors
///
/// [`ServeError::Replication`] when the engine has no log attached.
/// After that, only local durability failures (journal rotation/append)
/// end the loop with an error — network failures never do, they back
/// off and retry.
pub fn run_follower(
    engine: &ShardedEngine,
    mut leader: impl FnMut() -> Option<String>,
    status: &Arc<ReplicaStatus>,
    shutdown: &ShutdownHandle,
    opts: &FollowerOptions,
) -> Result<(), ServeError> {
    let fp = fingerprint(engine.scheme(), engine.nodes());
    let log = engine
        .replication()
        .ok_or_else(|| ServeError::Replication {
            detail: "follower loop needs a replication log attached to relay from".to_string(),
        })?;
    let mut offset = log.head();
    let mut rng = crate::bench::SplitMix64(opts.jitter_seed);
    let mut attempt: u32 = 0;
    let mut ever_synced = false;
    let mut first_dial = true;
    while !shutdown.is_shutdown() {
        if !first_dial {
            status.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        first_dial = false;
        let Some(addr) = leader() else {
            backoff(shutdown, opts, &mut rng, &mut attempt);
            continue;
        };
        let Ok(stream) = TcpStream::connect(&addr) else {
            backoff(shutdown, opts, &mut rng, &mut attempt);
            continue;
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(opts.read_timeout));
        let _ = stream.set_write_timeout(Some(opts.write_timeout));
        let Ok(read_half) = stream.try_clone() else {
            backoff(shutdown, opts, &mut rng, &mut attempt);
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let mut sender = BufWriter::new(stream);
        if wire::write_request(
            &mut sender,
            &Request::Subscribe {
                fingerprint: fp,
                epoch: log.epoch(),
                from: offset,
            },
        )
        .and_then(|()| sender.flush())
        .is_err()
        {
            backoff(shutdown, opts, &mut rng, &mut attempt);
            continue;
        }
        let mut synced_this_conn = false;
        loop {
            if shutdown.is_shutdown() {
                break;
            }
            let seg = match wire::read_response(&mut reader) {
                Ok(Response::JournalSegment(seg)) => seg,
                // An Error frame, an unexpected frame, EOF, a read
                // timeout (heartbeats stopped: the leader is gone or
                // wedged), or garbage: drop the connection and retry.
                _ => break,
            };
            if seg.epoch != 0 && seg.epoch < log.epoch() {
                // A deposed leader still streaming under its old term:
                // not divergence, just staleness. Re-dial — the address
                // source will have been re-parented by the promotion.
                break;
            }
            if seg.fingerprint != fp || seg.start != offset {
                // The stream is not a continuation of our history.
                status.diverged.store(1, Ordering::Relaxed);
                break;
            }
            status.diverged.store(0, Ordering::Relaxed);
            // Adopt a newer term durably *before* applying anything
            // written under it.
            log.observe_epoch(seg.epoch)?;
            if !synced_this_conn {
                synced_this_conn = true;
                attempt = 0;
                if ever_synced {
                    status.resyncs.fetch_add(1, Ordering::Relaxed);
                }
                ever_synced = true;
                status.connected.store(1, Ordering::Relaxed);
            }
            if !seg.ops.is_empty() {
                // Durable first, then the shards (engine.ingest_replicated
                // runs journal append → shard dispatch → in-memory publish
                // under the log lock): a crash between journal and shards
                // re-applies from the journal onto the snapshot at
                // restart, so nothing is lost and nothing doubles — and
                // the publish feeds our own downstream subscribers.
                offset = engine.ingest_replicated(seg.epoch, &seg.ops)?;
                engine.flush();
            }
            status.applied.store(offset, Ordering::Relaxed);
            status.leader_head.store(seg.head, Ordering::Relaxed);
            if seg.lease_ms != 0 {
                status
                    .lease_ms
                    .store(u64::from(seg.lease_ms), Ordering::Relaxed);
            }
            status
                .last_segment_unix_ms
                .store(ReplicaStatus::now_ms(), Ordering::Relaxed);
        }
        status.connected.store(0, Ordering::Relaxed);
        if !shutdown.is_shutdown() {
            backoff(shutdown, opts, &mut rng, &mut attempt);
        }
    }
    status.connected.store(0, Ordering::Relaxed);
    Ok(())
}

fn backoff(
    shutdown: &ShutdownHandle,
    opts: &FollowerOptions,
    rng: &mut crate::bench::SplitMix64,
    attempt: &mut u32,
) {
    let base = opts
        .backoff_base
        .saturating_mul(1u32 << (*attempt).min(10))
        .min(opts.backoff_max);
    // Up to +50% jitter so a herd of followers doesn't re-dial in step.
    let jitter_ns = (rng.next_u64() % (base.as_nanos().max(2) / 2) as u64) as u32;
    *attempt = attempt.saturating_add(1);
    interruptible_sleep(shutdown, base + Duration::from_nanos(u64::from(jitter_ns)));
}

/// Builds the [`SegmentFrame`] for one cut segment, advertising the
/// serving log's lease TTL so downstreams know when the claim lapses.
pub(crate) fn segment_frame(fingerprint: u32, lease_ms: u32, seg: &Segment) -> SegmentFrame {
    SegmentFrame {
        fingerprint,
        epoch: seg.epoch,
        start: seg.start,
        head: seg.head,
        lease_ms,
        ops: seg.ops.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_core::Scheme;
    use csp_trace::fault::Mutation;
    use std::fs;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut dir = std::env::temp_dir();
            dir.push(format!(
                "csp-repl-{tag}-{}-{:?}",
                std::process::id(),
                std::time::Instant::now()
            ));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn ops(seed: u64, n: usize) -> Vec<ReplOp> {
        let mut rng = crate::bench::SplitMix64(seed);
        (0..n)
            .map(|i| {
                let key = rng.next_u64();
                let bits = SharingBitmap::from_bits(rng.next_u64() & 0xFFFF);
                if i % 2 == 0 {
                    ReplOp::Update {
                        key,
                        feedback: bits,
                    }
                } else {
                    ReplOp::Score { key, actual: bits }
                }
            })
            .collect()
    }

    #[test]
    fn op_codec_round_trips() {
        let original = ops(7, 100);
        let bytes = encode_ops(&original);
        assert_eq!(bytes.len(), 100 * REPL_OP_LEN);
        let back = decode_ops(100, &bytes).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn op_decode_rejects_damage() {
        let bytes = encode_ops(&ops(7, 2));
        // Wrong count for the byte length.
        assert!(decode_ops(1, &bytes).is_err());
        assert!(decode_ops(3, &bytes).is_err());
        // Hostile count: must reject before allocating.
        assert!(decode_ops(u32::MAX, &bytes).is_err());
        // Unknown tag.
        let mut hurt = bytes.clone();
        hurt[0] = 0xAB;
        assert!(decode_ops(2, &hurt).is_err());
    }

    #[test]
    fn fingerprint_separates_scheme_width_and_revision() {
        let a: Scheme = "last(pid)1[direct]".parse().unwrap();
        let b: Scheme = "last(pid)1[forwarded]".parse().unwrap();
        let c: Scheme = "union(pid+pc8)2[direct]".parse().unwrap();
        assert_ne!(fingerprint(&a, 16), fingerprint(&b, 16));
        assert_ne!(fingerprint(&a, 16), fingerprint(&c, 16));
        assert_ne!(fingerprint(&a, 16), fingerprint(&a, 32));
        assert_eq!(fingerprint(&a, 16), fingerprint(&a, 16));
    }

    #[test]
    fn log_appends_serve_segments_in_order() {
        let log = ReplicationLog::in_memory(1);
        let batch = ops(3, 10);
        let (head, ()) = log.append_with(&batch[..4], || ()).unwrap();
        assert_eq!(head, 4);
        let (head, ()) = log.append_with(&batch[4..], || ()).unwrap();
        assert_eq!(head, 10);
        let seg = log.wait_segment(0, 6, Duration::from_millis(10)).unwrap();
        assert_eq!(seg.start, 0);
        assert_eq!(seg.head, 10);
        assert_eq!(seg.ops, batch[..6]);
        let seg = log.wait_segment(6, 100, Duration::from_millis(10)).unwrap();
        assert_eq!(seg.ops, batch[6..]);
    }

    #[test]
    fn caught_up_subscriber_gets_heartbeats_and_edges_are_typed() {
        let log = ReplicationLog::in_memory(1);
        log.append_with(&ops(3, 5), || ()).unwrap();
        // Caught up: an empty heartbeat after the timeout.
        let seg = log.wait_segment(5, 100, Duration::from_millis(5)).unwrap();
        assert!(seg.ops.is_empty());
        assert_eq!(seg.head, 5);
        // Ahead of the head: divergence.
        assert_eq!(
            log.wait_segment(9, 100, Duration::from_millis(5)),
            Err(SegmentError::Ahead { head: 5 })
        );
        // Behind the pruned horizon: re-bootstrap.
        log.compact(3).unwrap();
        assert_eq!(
            log.wait_segment(1, 100, Duration::from_millis(5)),
            Err(SegmentError::TooOld { oldest: 3 })
        );
        // The horizon itself is still served.
        let seg = log.wait_segment(3, 100, Duration::from_millis(5)).unwrap();
        assert_eq!(seg.ops.len(), 2);
    }

    #[test]
    fn durable_log_survives_restart_and_rotation() {
        let dir = TempDir::new("durable");
        let batch = ops(11, 50);
        {
            let store = JournalStore::open(dir.path(), 42).unwrap();
            let log = ReplicationLog::durable(store, &Recovered::default()).unwrap();
            log.append_with(&batch[..20], || ()).unwrap();
            // Snapshot at 20: rotate, prune below 20.
            log.compact(20).unwrap();
            log.append_with(&batch[20..], || ()).unwrap();
        }
        let store = JournalStore::open(dir.path(), 42).unwrap();
        let recovered = store.recover_all().unwrap();
        assert_eq!(recovered.head(), 50);
        // The pre-rotation file is still on disk until the *next* prune
        // makes it redundant, so recovery still sees everything.
        assert_eq!(recovered.tail_from(20), &batch[20..]);
        // Restart again: a fresh writer at the head must not disturb
        // recovery continuity.
        let log = ReplicationLog::durable(store, &recovered).unwrap();
        assert_eq!(log.head(), 50);
        drop(log);
        let store = JournalStore::open(dir.path(), 42).unwrap();
        assert_eq!(store.recover_all().unwrap().head(), 50);
    }

    #[test]
    fn torn_journal_tail_recovers_the_clean_prefix() {
        let dir = TempDir::new("torn");
        let batch = ops(13, 30);
        let store = JournalStore::open(dir.path(), 7).unwrap();
        let log = ReplicationLog::durable(store, &Recovered::default()).unwrap();
        for chunk in batch.chunks(10) {
            log.append_with(chunk, || ()).unwrap();
        }
        drop(log);
        // Tear the tail of the newest file mid-segment.
        let store = JournalStore::open(dir.path(), 7).unwrap();
        let (_, path) = store.list().unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        let cut = Mutation::Truncate {
            len: bytes.len() - 9,
        }
        .apply(&bytes);
        fs::write(&path, cut).unwrap();
        let recovered = store.recover_all().unwrap();
        // The last 10-op segment is gone; the first 20 survive intact.
        assert_eq!(recovered.head(), 20);
        assert_eq!(recovered.ops, batch[..20]);
    }

    #[test]
    fn foreign_fingerprint_is_refused() {
        let dir = TempDir::new("foreign");
        let store = JournalStore::open(dir.path(), 1).unwrap();
        let log = ReplicationLog::durable(store, &Recovered::default()).unwrap();
        log.append_with(&ops(1, 5), || ()).unwrap();
        drop(log);
        let store = JournalStore::open(dir.path(), 2).unwrap();
        assert!(matches!(
            store.recover_all(),
            Err(ServeError::Replication { .. })
        ));
    }

    #[test]
    fn journal_write_failure_aborts_before_dispatch() {
        let dir = TempDir::new("abort");
        let store = JournalStore::open(dir.path(), 9).unwrap();
        let log = ReplicationLog::durable(store, &Recovered::default()).unwrap();
        log.append_with(&ops(2, 3), || ()).unwrap();
        // Remove the directory out from under the *next rotation* to
        // force an append failure path.
        fs::remove_dir_all(dir.path()).unwrap();
        // A floor with nothing to reclaim is a tolerant no-op even with
        // the directory gone (the satellite fix: a racing cleanup must
        // not fail compaction).
        let stats = log.compact(0).unwrap();
        assert_eq!(stats.reclaimed_bytes, 0);
        // A real floor needs a journal rotation, which must fail loudly:
        // losing durability is not tolerable.
        assert!(log.compact(3).is_err());
        let ran = std::cell::Cell::new(false);
        // The current writer's fd is still valid, so appends succeed and
        // the log stays consistent.
        let (head, ()) = log.append_with(&ops(2, 3), || ran.set(true)).unwrap();
        assert!(ran.get());
        assert_eq!(head, 6);
    }

    #[test]
    fn compact_reports_reclaimed_bytes() {
        let dir = TempDir::new("reclaim");
        let store = JournalStore::open(dir.path(), 9).unwrap();
        let log = ReplicationLog::durable(store, &Recovered::default()).unwrap();
        log.append_with(&ops(5, 40), || ()).unwrap();
        let stats = log.compact(40).unwrap();
        assert_eq!(stats.floor, 40);
        // The pre-rotation file held 40 encoded ops plus framing.
        assert!(stats.reclaimed_bytes > 40 * REPL_OP_LEN as u64);
        assert_eq!(stats.held_bytes, 0);
        assert_eq!(log.oldest(), 40);
    }

    #[test]
    fn prune_tolerates_racing_unlinks() {
        let dir = TempDir::new("race");
        let store = JournalStore::open(dir.path(), 9).unwrap();
        let mut w = store.create_writer(0, 1).unwrap();
        w.append(3, &encode_ops(&ops(1, 3))).unwrap();
        drop(w);
        let _w2 = store.create_writer(3, 1).unwrap();
        // Someone else unlinks the redundant file between our listing
        // and our remove: prune must not fail, and reports 0 reclaimed.
        let victim = store.list().unwrap()[0].1.clone();
        fs::remove_file(&victim).unwrap();
        assert_eq!(store.prune_below(3).unwrap(), 0);
    }

    #[test]
    fn compaction_respects_live_leases_and_reports_held_bytes() {
        let dir = TempDir::new("lease");
        let store = JournalStore::open(dir.path(), 9).unwrap();
        let log = ReplicationLog::durable(store, &Recovered::default()).unwrap();
        log.append_with(&ops(5, 20), || ()).unwrap();
        // A live downstream at offset 5 pins the horizon.
        let lease = log.lease_grant(5);
        assert_eq!(log.lease_count(), 1);
        let stats = log.compact(20).unwrap();
        assert_eq!(stats.floor, 5);
        assert_eq!(stats.reclaimed_bytes, 0);
        assert!(stats.held_bytes > 0);
        assert_eq!(log.held_bytes(), stats.held_bytes);
        assert_eq!(log.oldest(), 5);
        // The laggard's offset is still servable.
        assert!(log.wait_segment(5, 100, Duration::from_millis(5)).is_ok());
        // Released, the same floor reclaims the pinned bytes.
        log.lease_release(lease);
        assert_eq!(log.lease_count(), 0);
        let stats = log.compact(20).unwrap();
        assert_eq!(stats.floor, 20);
        assert!(stats.reclaimed_bytes > 0);
        assert_eq!(stats.held_bytes, 0);
        assert_eq!(log.held_bytes(), 0);
        assert_eq!(log.oldest(), 20);
    }

    #[test]
    fn observe_epoch_adopts_only_newer_terms() {
        let log = ReplicationLog::in_memory(1);
        assert_eq!(log.epoch(), 1);
        assert!(!log.observe_epoch(1).unwrap());
        assert!(log.observe_epoch(5).unwrap());
        assert_eq!(log.epoch(), 5);
        assert!(!log.observe_epoch(3).unwrap());
        assert_eq!(log.epoch(), 5);
        assert_eq!(log.bump_epoch(0).unwrap(), 6);
        assert_eq!(log.bump_epoch(10).unwrap(), 10);
    }

    #[test]
    fn segments_carry_the_current_epoch() {
        let log = ReplicationLog::in_memory_at(1, 0, 4);
        log.append_with(&ops(3, 2), || ()).unwrap();
        let seg = log.wait_segment(0, 100, Duration::from_millis(5)).unwrap();
        assert_eq!(seg.epoch, 4);
        log.bump_epoch(0).unwrap();
        let seg = log.wait_segment(0, 100, Duration::from_millis(5)).unwrap();
        assert_eq!(seg.epoch, 5);
    }

    #[test]
    fn epoch_bump_is_durable_across_restart_and_torn_tail() {
        let dir = TempDir::new("epoch-durable");
        let batch = ops(17, 15);
        {
            let store = JournalStore::open(dir.path(), 3).unwrap();
            let log = ReplicationLog::durable(store, &Recovered::default()).unwrap();
            assert_eq!(log.epoch(), 1);
            log.append_with(&batch[..10], || ()).unwrap();
            // Promotion: the new term is journaled before it's live.
            assert_eq!(log.bump_epoch(0).unwrap(), 2);
            log.append_with(&batch[10..], || ()).unwrap();
        }
        let store = JournalStore::open(dir.path(), 3).unwrap();
        let recovered = store.recover_all().unwrap();
        assert_eq!(recovered.head(), 15);
        assert_eq!(recovered.epoch, 2);
        // Tear the tail of the newest (post-bump) file mid-segment: the
        // epoch claim survives because it lives in the header, and the
        // re-open-as-leader path resumes at the clean durable prefix.
        let (_, path) = store.list().unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        let cut = Mutation::Truncate {
            len: bytes.len() - 7,
        }
        .apply(&bytes);
        fs::write(&path, cut).unwrap();
        let recovered = store.recover_all().unwrap();
        assert_eq!(recovered.head(), 10);
        assert_eq!(recovered.epoch, 2);
        // Re-open as leader under the next term.
        let next = recovered.epoch + 1;
        let log = ReplicationLog::durable_at_epoch(store, &recovered, next).unwrap();
        assert_eq!(log.epoch(), 3);
        assert_eq!(log.head(), 10);
        drop(log);
        let store = JournalStore::open(dir.path(), 3).unwrap();
        assert_eq!(store.recover_all().unwrap().epoch, 3);
    }
}
