//! Typed errors for the serving crate.
//!
//! The engine and snapshot layers report recoverable failures through
//! [`ServeError`] instead of panicking: the `csp-served` binary maps them
//! onto its exit-code convention (1 for runtime failures, 2 for usage
//! errors), and the supervisor distinguishes restartable faults from
//! configuration mistakes.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// A recoverable serving-layer failure.
#[derive(Debug)]
pub enum ServeError {
    /// A trace was replayed into an engine built for a different machine
    /// width — a configuration mistake, not a data fault.
    WidthMismatch {
        /// Machine width recorded in the trace.
        trace_nodes: usize,
        /// Machine width the engine was built for.
        engine_nodes: usize,
    },
    /// A snapshot's header does not match the engine it would restore
    /// into (scheme, width, or shard count differ).
    SnapshotMismatch {
        /// What differs, and the two values.
        detail: String,
    },
    /// A snapshot file is structurally invalid or fails its checksums.
    SnapshotCorrupt {
        /// The offending file.
        path: PathBuf,
        /// What the reader rejected.
        detail: String,
    },
    /// A replication invariant was violated: a foreign or gapped
    /// journal, a fingerprint mismatch, or a log attached twice.
    Replication {
        /// What went wrong.
        detail: String,
    },
    /// A mutation carried a fencing epoch below the current term — it
    /// comes from a deposed leader and was refused unapplied.
    Fenced {
        /// The stale epoch the sender claimed.
        claimed: u64,
        /// The receiver's current fencing epoch.
        current: u64,
    },
    /// An I/O failure while reading or writing snapshot state.
    Io {
        /// The path being accessed, when known.
        path: Option<PathBuf>,
        /// The underlying error.
        source: io::Error,
    },
}

impl ServeError {
    /// Wraps an I/O error with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        ServeError::Io {
            path: Some(path.into()),
            source,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WidthMismatch {
                trace_nodes,
                engine_nodes,
            } => write!(
                f,
                "trace/engine machine width mismatch: trace has {trace_nodes} nodes, \
                 engine built for {engine_nodes}"
            ),
            ServeError::SnapshotMismatch { detail } => {
                write!(f, "snapshot does not match engine: {detail}")
            }
            ServeError::SnapshotCorrupt { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            ServeError::Replication { detail } => {
                write!(f, "replication: {detail}")
            }
            ServeError::Fenced { claimed, current } => write!(
                f,
                "fenced: stale epoch {claimed} refused, current term is {current}"
            ),
            ServeError::Io {
                path: Some(p),
                source,
            } => {
                write!(f, "{}: {source}", p.display())
            }
            ServeError::Io { path: None, source } => source.fmt(f),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(source: io::Error) -> Self {
        ServeError::Io { path: None, source }
    }
}
