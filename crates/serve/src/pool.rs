//! A persistent pool of shard workers for repeated offline replays.
//!
//! [`ShardedEngine`](crate::ShardedEngine) spawns its worker threads at
//! construction and joins them at shutdown — the right lifecycle for a
//! long-lived service, but the wrong one for a benchmark matrix that
//! evaluates hundreds of short cells: at CI's reduced trace scale the
//! per-cell thread spawn/join dominates the measurement and the
//! "sharded" numbers stop meaning anything about sharding.
//!
//! [`ShardPool`] keeps the worker threads alive across evaluations.
//! Each replay *re-tasks* the same workers with a fresh
//! [`ShardState`] (an in-band `Reset`, so FIFO inbox order guarantees
//! no stale operation can leak across sessions), streams the same
//! ordered operation chunks [`replay_ops`] emits for the serving
//! engine, and drains the per-shard states back for a commutative
//! counter merge. The scored result is therefore bit-identical to both
//! [`ShardedEngine::replay_prepared`](crate::ShardedEngine::replay_prepared)
//! and the offline evaluators — only the thread lifecycle differs.
//!
//! Pool workers are deliberately *not* supervised (no checkpoint or
//! journal): a replay is a bounded batch job whose caller owns the
//! whole lifecycle, so a worker panic surfaces as a replay panic
//! instead of an in-place recovery.

use crate::shard::{apply_op, replay_ops, IngestOp, ShardState, INBOX_DEPTH, REPLAY_CHUNK};
use csp_core::{shard_of_key, PreparedTrace, Scheme};
use csp_metrics::ConfusionMatrix;
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::thread;

/// Messages a pool worker consumes, in FIFO order.
enum PoolMsg {
    /// Install a fresh session state (discards any previous one).
    Reset(Box<ShardState>),
    /// Apply a batch of in-order ingest operations to the session.
    Ingest(Vec<IngestOp>),
    /// Reply with a clone of the session state (the drain barrier: the
    /// reply proves every earlier message of this session was applied).
    Drain(Sender<Box<ShardState>>),
}

struct PoolWorker {
    tx: SyncSender<PoolMsg>,
    join: thread::JoinHandle<()>,
}

/// A fixed set of persistent shard worker threads, re-tasked per replay.
///
/// # Example
///
/// ```
/// use csp_serve::ShardPool;
/// use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
/// use csp_core::{engine::run_scheme, PreparedTrace};
///
/// let mut trace = Trace::new(16);
/// let readers = SharingBitmap::from_nodes(&[NodeId(1)]);
/// for i in 0..20 {
///     let (inv, prev) = if i == 0 {
///         (SharingBitmap::empty(), None)
///     } else {
///         (readers, Some((NodeId(0), Pc(7))))
///     };
///     trace.push(SharingEvent::new(NodeId(0), Pc(7), LineAddr(3), NodeId(1), inv, prev));
/// }
/// trace.set_final_readers(LineAddr(3), readers);
///
/// let pool = ShardPool::new(4);
/// let prepared = PreparedTrace::new(&trace);
/// let scheme = "last(pid+pc8)1[direct]".parse().unwrap();
/// // The same pool serves many replays; each is bit-identical to the
/// // offline engine.
/// for _ in 0..3 {
///     assert_eq!(pool.replay_prepared(&prepared, &scheme), run_scheme(&trace, &scheme));
/// }
/// ```
#[derive(Debug)]
pub struct ShardPool {
    workers: Vec<PoolWorker>,
}

impl std::fmt::Debug for PoolWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolWorker").finish_non_exhaustive()
    }
}

impl ShardPool {
    /// Spawns `shards` persistent workers.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let workers = (0..shards)
            .map(|i| {
                let (tx, rx) = sync_channel(INBOX_DEPTH);
                let join = thread::Builder::new()
                    .name(format!("csp-pool-{i}"))
                    .spawn(move || pool_worker(rx))
                    .expect("spawn pool worker thread");
                PoolWorker { tx, join }
            })
            .collect();
        ShardPool { workers }
    }

    /// Number of persistent workers.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Replays a prepared trace under `scheme` across the pool and
    /// returns the merged screening counts — bit-identical to
    /// [`ShardedEngine::replay_prepared`](crate::ShardedEngine::replay_prepared)
    /// followed by `stats().confusion`, with no thread spawned.
    ///
    /// # Panics
    ///
    /// Panics if a pool worker has died (a previous replay panicked it).
    pub fn replay_prepared(
        &self,
        prepared: &PreparedTrace<'_>,
        scheme: &Scheme,
    ) -> ConfusionMatrix {
        let nodes = prepared.trace().nodes();
        let shards = self.workers.len();
        for worker in &self.workers {
            worker
                .tx
                .send(PoolMsg::Reset(Box::new(ShardState::empty(scheme, nodes))))
                .expect("pool worker alive");
        }
        // Same chunking as the serving engine's replay: each chunk's ops
        // are emitted in evaluation order and bucketed by routing key, so
        // every worker sees its share of operations in emission order.
        let mut buffers: Vec<Vec<IngestOp>> = vec![Vec::new(); shards];
        let mut pos = 0;
        while pos < prepared.len() {
            let end = prepared.len().min(pos + REPLAY_CHUNK);
            for op in replay_ops(prepared, scheme, pos..end) {
                buffers[shard_of_key(op.route_key(), shards)].push(op);
            }
            for (worker, buffer) in self.workers.iter().zip(&mut buffers) {
                if !buffer.is_empty() {
                    worker
                        .tx
                        .send(PoolMsg::Ingest(std::mem::take(buffer)))
                        .expect("pool worker alive");
                }
            }
            pos = end;
        }
        // Drain: in-band replies double as completion barriers, and
        // integer counter merges commute, so the sum is order-exact.
        let mut confusion = ConfusionMatrix::default();
        for worker in &self.workers {
            let (reply_tx, reply_rx): (Sender<Box<ShardState>>, Receiver<Box<ShardState>>) =
                std::sync::mpsc::channel();
            worker
                .tx
                .send(PoolMsg::Drain(reply_tx))
                .expect("pool worker alive");
            let state = reply_rx.recv().expect("pool worker replies to drain");
            confusion += state.confusion;
        }
        confusion
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing each inbox ends its worker loop.
        for PoolWorker { tx, join } in self.workers.drain(..) {
            drop(tx);
            let _ = join.join();
        }
    }
}

/// The pool worker loop: applies messages in FIFO order through the same
/// [`apply_op`] funnel as the supervised shard workers, holding at most
/// one session state at a time.
fn pool_worker(rx: Receiver<PoolMsg>) {
    let mut session: Option<Box<ShardState>> = None;
    while let Ok(msg) = rx.recv() {
        match msg {
            PoolMsg::Reset(state) => session = Some(state),
            PoolMsg::Ingest(ops) => {
                let state = session.as_mut().expect("ingest before reset");
                let nodes = state.table.nodes();
                for op in ops {
                    apply_op(state, op, nodes);
                }
            }
            PoolMsg::Drain(reply) => {
                let state = session.as_ref().expect("drain before reset");
                // A dropped receiver just means the caller gave up.
                let _ = reply.send(state.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_core::engine::run_scheme;
    use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    fn alternating_trace(pairs: usize) -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Option<(NodeId, Pc)> = None;
        for i in 0..pairs * 2 {
            let (writer, pc) = if i % 2 == 0 {
                (NodeId(0), Pc(10))
            } else {
                (NodeId(1), Pc(20))
            };
            let inv = match prev {
                None => SharingBitmap::empty(),
                Some((NodeId(0), _)) => bm(&[4, 5]),
                Some(_) => bm(&[8, 9]),
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(1),
                NodeId(0),
                inv,
                prev,
            ));
            prev = Some((writer, pc));
        }
        t.set_final_readers(LineAddr(1), bm(&[8, 9]));
        t
    }

    #[test]
    fn pool_replay_is_bit_identical_to_offline_across_sessions() {
        let pool = ShardPool::new(3);
        let trace = alternating_trace(60);
        let prepared = PreparedTrace::new(&trace);
        // Re-tasking the same workers with different schemes (different
        // storage families, update modes) must leak nothing across
        // sessions.
        for spec in [
            "last(pid+pc8)1[direct]",
            "union(pid+pc8)2[forwarded]",
            "union(dir+add8)2[ordered]",
            "pas(pid+pc4)2[direct]",
            "last(pid+pc8)1[direct]", // repeat: session reset is exact
        ] {
            let scheme: Scheme = spec.parse().unwrap();
            assert_eq!(
                pool.replay_prepared(&prepared, &scheme),
                run_scheme(&trace, &scheme),
                "{spec}"
            );
        }
    }

    #[test]
    fn pool_matches_sharded_engine() {
        let pool = ShardPool::new(4);
        let trace = alternating_trace(40);
        let prepared = PreparedTrace::new(&trace);
        let scheme: Scheme = "union(pid+pc8)2[forwarded]".parse().unwrap();
        let engine = crate::ShardedEngine::new(scheme, trace.nodes(), 4);
        engine.replay_prepared(&prepared).unwrap();
        assert_eq!(
            pool.replay_prepared(&prepared, &scheme),
            engine.stats().confusion
        );
    }

    #[test]
    fn empty_trace_replays_to_empty_counts() {
        let pool = ShardPool::new(2);
        let trace = Trace::new(16);
        let prepared = PreparedTrace::new(&trace);
        let scheme: Scheme = "last(pid+pc8)1[direct]".parse().unwrap();
        assert_eq!(pool.replay_prepared(&prepared, &scheme).decisions(), 0);
        assert_eq!(pool.shards(), 2);
    }
}
