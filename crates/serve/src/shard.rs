//! The sharded predictor engine: one worker thread per shard, each owning
//! a private [`PredictorTable`] partition. No global lock anywhere.
//!
//! # Why sharding is exact
//!
//! A predictor entry's state depends only on the *ordered sequence of
//! updates to its own key* — entries never interact. The dispatcher routes
//! every operation (update, score, query) to the shard
//! [`shard_of_key`] names, appending to that shard's FIFO inbox in global
//! emission order. Restricted to one key, the shard's inbox order is
//! therefore exactly the sequential engine's order, so each entry moves
//! through the same states it would in one global table. Screening
//! counters are integers and merge by addition, which commutes — the
//! merged totals are bit-identical to a sequential run no matter how keys
//! spread over shards. This holds for *forwarded* update too: the
//! `update(fkey)` and the `score(key)` of one event may land on different
//! shards, but each touches only its own key's entry, and each shard sees
//! its share of operations in emission order.
//!
//! The one thing sharding reorders is *wall-clock interleaving across
//! keys*, which no per-key state can observe.

use crate::Probe;
use csp_core::{node_bits, shard_of_key, PredictorTable, PreparedTrace, Scheme, UpdateMode};
use csp_metrics::{ConfusionMatrix, OnlineConfusion, Screening};
use csp_trace::{SharingBitmap, SharingEvent, Trace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Operations batched into a shard's inbox by the ingest path.
#[derive(Clone, Copy, Debug)]
pub enum IngestOp {
    /// Deliver a feedback bitmap to `key`'s entry.
    Update {
        /// The predictor index key to train.
        key: u64,
        /// The invalidation feedback to shift in.
        feedback: SharingBitmap,
    },
    /// Predict through `key`'s entry and score the prediction against
    /// `actual` in the shard's live confusion counters.
    Score {
        /// The predictor index key to consult.
        key: u64,
        /// The ground-truth reader bitmap for this decision.
        actual: SharingBitmap,
    },
}

/// Messages a shard worker consumes.
enum ShardMsg {
    /// A batch of in-order ingest operations.
    Ingest(Vec<IngestOp>),
    /// Predict for `(position, key)` probes and reply. An empty probe list
    /// doubles as a flush barrier: the reply proves every earlier message
    /// has been applied.
    Query {
        probes: Vec<(usize, u64)>,
        reply: Sender<Vec<(usize, SharingBitmap)>>,
    },
}

/// Per-shard live counters, shared lock-free between the worker (writer)
/// and monitoring readers.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Screening counters over every scored decision on this shard.
    pub confusion: OnlineConfusion,
    /// Update operations applied.
    pub updates: AtomicU64,
    /// Score operations applied (replay decisions).
    pub scored: AtomicU64,
    /// Query probes answered (serving decisions; not scored).
    pub queries: AtomicU64,
    /// Predictor entries currently allocated on this shard.
    pub entries: AtomicU64,
}

/// A merged, point-in-time view of the whole engine's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Merged screening counters over all shards.
    pub confusion: ConfusionMatrix,
    /// Total update operations applied.
    pub updates: u64,
    /// Total scored (replay) decisions.
    pub scored: u64,
    /// Total serving probes answered.
    pub queries: u64,
    /// Total predictor entries allocated.
    pub entries: u64,
    /// Per-shard confusion matrices, in shard order.
    pub per_shard: Vec<ConfusionMatrix>,
}

impl EngineSnapshot {
    /// Screening rates of the merged confusion counters.
    pub fn screening(&self) -> Screening {
        self.confusion.screening()
    }
}

struct ShardHandle {
    tx: SyncSender<ShardMsg>,
    counters: Arc<ShardCounters>,
    join: Option<JoinHandle<PredictorTable>>,
}

/// How many messages a shard inbox buffers before senders block
/// (backpressure: a slow shard throttles ingest instead of ballooning
/// memory).
const INBOX_DEPTH: usize = 64;

/// Ingest operations buffered per shard before a batch is flushed.
const BATCH: usize = 1024;

/// An online prediction engine partitioned over worker-thread shards.
///
/// Construction spawns the workers; [`shutdown`](ShardedEngine::shutdown)
/// (or drop) joins them. All methods take `&self` — the engine is shared
/// across server connection threads behind an [`Arc`].
///
/// # Example
///
/// ```
/// use csp_serve::{Probe, ShardedEngine};
/// use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
///
/// let mut trace = Trace::new(16);
/// let readers = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
/// for i in 0..50 {
///     let (inv, prev) = if i == 0 {
///         (SharingBitmap::empty(), None)
///     } else {
///         (readers, Some((NodeId(0), Pc(7))))
///     };
///     trace.push(SharingEvent::new(NodeId(0), Pc(7), LineAddr(3), NodeId(1), inv, prev));
/// }
/// trace.set_final_readers(LineAddr(3), readers);
///
/// let engine = ShardedEngine::new("last(pid+pc8)1[direct]".parse().unwrap(), 16, 4);
/// engine.replay_trace(&trace);
/// let probe = Probe::new(NodeId(0), Pc(7), NodeId(1), LineAddr(3));
/// assert_eq!(engine.predict(&probe), readers);
/// let stats = engine.stats();
/// assert!(stats.screening().pvp > 0.9);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    scheme: Scheme,
    nodes: usize,
    node_bits: u32,
    shards: Vec<ShardHandle>,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle").finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Spawns `shards` worker threads for `scheme` on an `nodes`-node
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or a worker thread cannot be spawned.
    pub fn new(scheme: Scheme, nodes: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let handles = (0..shards)
            .map(|i| {
                let (tx, rx) = sync_channel(INBOX_DEPTH);
                let counters = Arc::new(ShardCounters::default());
                let worker_counters = Arc::clone(&counters);
                let join = std::thread::Builder::new()
                    .name(format!("csp-shard-{i}"))
                    .spawn(move || shard_worker(&scheme, nodes, rx, &worker_counters))
                    .expect("spawn shard worker");
                ShardHandle {
                    tx,
                    counters,
                    join: Some(join),
                }
            })
            .collect();
        ShardedEngine {
            scheme,
            nodes,
            node_bits: node_bits(nodes),
            shards: handles,
        }
    }

    /// The scheme the engine serves.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The machine width predictions are scored against.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The predictor key a probe consults under the engine's scheme.
    pub fn key_of(&self, probe: &Probe) -> u64 {
        self.scheme.index.key(
            probe.writer,
            probe.pc,
            probe.home,
            probe.line,
            self.node_bits,
        )
    }

    fn send(&self, shard: usize, msg: ShardMsg) {
        // A send can only fail after a worker panicked, which tears down
        // the run anyway; surface it as the panic it is.
        if self.shards[shard].tx.send(msg).is_err() {
            panic!("shard {shard} worker terminated early");
        }
    }

    /// Streams one live event into the predictor (no scoring): the update
    /// half of the engine loop, for deployments that learn from a
    /// coherence feed while serving queries.
    ///
    /// `direct` trains the current writer's entry, `forwarded` the
    /// previous writer's (Figure 3 of the paper). `ordered` is the
    /// paper's unimplementable-in-hardware oracle — it needs the event's
    /// *future* readers, which a live stream cannot know — so it falls
    /// back to `direct` here; use [`replay_trace`](Self::replay_trace)
    /// for faithful ordered replay of a recorded trace.
    pub fn ingest_event(&self, event: &SharingEvent) {
        let op = match self.scheme.update {
            UpdateMode::Forwarded => {
                self.scheme
                    .index
                    .forward_key_of(event, self.node_bits)
                    .map(|key| IngestOp::Update {
                        key,
                        feedback: event.invalidated,
                    })
            }
            UpdateMode::Direct | UpdateMode::Ordered => {
                event.prev_writer.is_some().then(|| IngestOp::Update {
                    key: self.scheme.index.key_of(event, self.node_bits),
                    feedback: event.invalidated,
                })
            }
        };
        if let Some(op) = op {
            let key = match op {
                IngestOp::Update { key, .. } | IngestOp::Score { key, .. } => key,
            };
            self.send(
                shard_of_key(key, self.shards.len()),
                ShardMsg::Ingest(vec![op]),
            );
        }
    }

    /// Replays a full recorded trace through the engine, updating *and
    /// scoring* every decision exactly as the offline engine
    /// (`csp_core::engine::run_scheme`) does — including the two-pass
    /// `ordered` oracle, whose ground truth the trace supplies.
    ///
    /// After this returns (it flushes internally), the engine's
    /// [`stats`](Self::stats) confusion counters are bit-identical to the
    /// offline run's confusion matrix, and its tables are bit-identical
    /// to the offline tables — see `tests/equivalence.rs`.
    ///
    /// # Panics
    ///
    /// Panics if the trace's machine width differs from the engine's.
    pub fn replay_trace(&self, trace: &Trace) {
        self.replay_prepared(&PreparedTrace::new(trace));
    }

    /// [`replay_trace`](Self::replay_trace) over an already-prepared
    /// trace: the actuals and the key stream come from the *same* shared
    /// computation (`csp_core::KeyStream`) the offline engine walks, so
    /// online and offline replay cannot derive keys differently. A caller
    /// replaying one trace through several engines (or schemes) shares
    /// one preparation across all of them.
    ///
    /// # Panics
    ///
    /// Panics if the trace's machine width differs from the engine's.
    pub fn replay_prepared(&self, prepared: &PreparedTrace<'_>) {
        assert_eq!(
            prepared.nodes(),
            self.nodes,
            "trace/engine machine width mismatch"
        );
        let stream = prepared.key_stream(self.scheme.index);
        let keys = stream.keys();
        let forward_keys = stream.forward_keys();
        let has_prev = prepared.has_prev();
        let invalidated = prepared.invalidated();
        let actuals = prepared.actuals();
        let shards = self.shards.len();
        let mut buffers: Vec<Vec<IngestOp>> = vec![Vec::with_capacity(BATCH); shards];
        let push = |buffers: &mut Vec<Vec<IngestOp>>, op: IngestOp| {
            let key = match op {
                IngestOp::Update { key, .. } | IngestOp::Score { key, .. } => key,
            };
            let s = shard_of_key(key, shards);
            buffers[s].push(op);
            if buffers[s].len() >= BATCH {
                let batch = std::mem::replace(&mut buffers[s], Vec::with_capacity(BATCH));
                self.send(s, ShardMsg::Ingest(batch));
            }
        };
        for i in 0..prepared.len() {
            let key = keys[i];
            match self.scheme.update {
                UpdateMode::Direct => {
                    if has_prev[i] {
                        push(
                            &mut buffers,
                            IngestOp::Update {
                                key,
                                feedback: invalidated[i],
                            },
                        );
                    }
                    push(
                        &mut buffers,
                        IngestOp::Score {
                            key,
                            actual: actuals[i],
                        },
                    );
                }
                UpdateMode::Forwarded => {
                    if has_prev[i] {
                        push(
                            &mut buffers,
                            IngestOp::Update {
                                key: forward_keys[i],
                                feedback: invalidated[i],
                            },
                        );
                    }
                    push(
                        &mut buffers,
                        IngestOp::Score {
                            key,
                            actual: actuals[i],
                        },
                    );
                }
                UpdateMode::Ordered => {
                    push(
                        &mut buffers,
                        IngestOp::Score {
                            key,
                            actual: actuals[i],
                        },
                    );
                    push(
                        &mut buffers,
                        IngestOp::Update {
                            key,
                            feedback: actuals[i],
                        },
                    );
                }
            }
        }
        for (s, batch) in buffers.into_iter().enumerate() {
            if !batch.is_empty() {
                self.send(s, ShardMsg::Ingest(batch));
            }
        }
        self.flush();
    }

    /// Predicts the reader bitmap for one probe.
    pub fn predict(&self, probe: &Probe) -> SharingBitmap {
        self.predict_keys(&[self.key_of(probe)])[0]
    }

    /// Predicts a batch of probes, preserving input order.
    pub fn predict_batch(&self, probes: &[Probe]) -> Vec<SharingBitmap> {
        let keys: Vec<u64> = probes.iter().map(|p| self.key_of(p)).collect();
        self.predict_keys(&keys)
    }

    /// Predicts for raw predictor keys, preserving input order.
    pub fn predict_keys(&self, keys: &[u64]) -> Vec<SharingBitmap> {
        let shards = self.shards.len();
        let mut per_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); shards];
        for (pos, &key) in keys.iter().enumerate() {
            per_shard[shard_of_key(key, shards)].push((pos, key));
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let mut outstanding = 0usize;
        for (s, probes) in per_shard.into_iter().enumerate() {
            if probes.is_empty() {
                continue;
            }
            outstanding += 1;
            self.send(
                s,
                ShardMsg::Query {
                    probes,
                    reply: reply_tx.clone(),
                },
            );
        }
        let mut out = vec![SharingBitmap::empty(); keys.len()];
        for _ in 0..outstanding {
            let part = reply_rx.recv().expect("shard worker terminated early");
            for (pos, bitmap) in part {
                out[pos] = bitmap;
            }
        }
        out
    }

    /// Blocks until every shard has applied all previously sent
    /// operations (an empty query round-trip per shard).
    pub fn flush(&self) {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        for s in 0..self.shards.len() {
            self.send(
                s,
                ShardMsg::Query {
                    probes: Vec::new(),
                    reply: reply_tx.clone(),
                },
            );
        }
        for _ in 0..self.shards.len() {
            let _ = reply_rx.recv().expect("shard worker terminated early");
        }
    }

    /// A live snapshot of the merged per-shard counters.
    ///
    /// Lock-free: reads the atomic counters without interrupting the
    /// workers. Call [`flush`](Self::flush) first when the snapshot must
    /// reflect everything already *sent* (e.g. after a replay).
    pub fn stats(&self) -> EngineSnapshot {
        let per_shard: Vec<ConfusionMatrix> = self
            .shards
            .iter()
            .map(|s| s.counters.confusion.snapshot())
            .collect();
        let confusion = csp_metrics::online::merge_snapshots(per_shard.iter().copied());
        let sum = |f: fn(&ShardCounters) -> &AtomicU64| {
            self.shards
                .iter()
                .map(|s| f(&s.counters).load(Ordering::Relaxed))
                .sum()
        };
        EngineSnapshot {
            confusion,
            updates: sum(|c| &c.updates),
            scored: sum(|c| &c.scored),
            queries: sum(|c| &c.queries),
            entries: sum(|c| &c.entries),
            per_shard,
        }
    }

    /// Drains the shards, joins the workers, and folds the shard tables
    /// into one global [`PredictorTable`] (e.g. for snapshot/restore or
    /// offline inspection).
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn shutdown(mut self) -> PredictorTable {
        let mut global = PredictorTable::new(&self.scheme, self.nodes);
        for shard in self.shards.drain(..) {
            drop(shard.tx); // close the inbox: the worker's recv loop ends
            if let Some(join) = shard.join {
                match join.join() {
                    Ok(table) => global.absorb(table),
                    Err(_) => panic!("shard worker panicked"),
                }
            }
        }
        global
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for shard in self.shards.drain(..) {
            drop(shard.tx);
            if let Some(join) = shard.join {
                let _ = join.join();
            }
        }
    }
}

/// The shard worker loop: owns this shard's table partition, applies
/// inbox messages in FIFO order, publishes counters.
fn shard_worker(
    scheme: &Scheme,
    nodes: usize,
    rx: Receiver<ShardMsg>,
    counters: &ShardCounters,
) -> PredictorTable {
    let mut table = PredictorTable::new(scheme, nodes);
    // Scored decisions accumulate locally and publish per batch: one
    // atomic add per cell per batch instead of four per decision.
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Ingest(ops) => {
                let mut batch_confusion = ConfusionMatrix::default();
                let (mut updates, mut scored) = (0u64, 0u64);
                for op in ops {
                    match op {
                        IngestOp::Update { key, feedback } => {
                            table.update(key, feedback);
                            updates += 1;
                        }
                        IngestOp::Score { key, actual } => {
                            let predicted = table.predict(key);
                            batch_confusion.record(predicted, actual, nodes);
                            scored += 1;
                        }
                    }
                }
                counters.confusion.add(&batch_confusion);
                counters.updates.fetch_add(updates, Ordering::Relaxed);
                counters.scored.fetch_add(scored, Ordering::Relaxed);
            }
            ShardMsg::Query { probes, reply } => {
                counters
                    .queries
                    .fetch_add(probes.len() as u64, Ordering::Relaxed);
                let out: Vec<(usize, SharingBitmap)> = probes
                    .into_iter()
                    .map(|(pos, key)| (pos, table.predict(key)))
                    .collect();
                // A dropped reply receiver just means the querier went
                // away; the prediction work is already done.
                let _ = reply.send(out);
            }
        }
        counters
            .entries
            .store(table.entries_touched() as u64, Ordering::Relaxed);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_core::engine::run_scheme;
    use csp_trace::{LineAddr, NodeId, Pc};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    /// Alternating writers over several lines: exercises forwarded update
    /// across shard boundaries.
    fn busy_trace(events: usize) -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Vec<Option<(NodeId, Pc)>> = vec![None; 8];
        for i in 0..events {
            let line = (i % 8) as u64;
            let writer = NodeId(((i / 8) % 4) as u8);
            let pc = Pc(100 + (i % 3) as u32);
            let inv = match prev[line as usize] {
                None => SharingBitmap::empty(),
                Some((w, _)) => bm(&[(w.index() as u8 + 5) % 16, (w.index() as u8 + 6) % 16]),
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(line),
                NodeId((line % 4) as u8),
                inv,
                prev[line as usize],
            ));
            prev[line as usize] = Some((writer, pc));
        }
        for line in 0..8u64 {
            if let Some((w, _)) = prev[line as usize] {
                t.set_final_readers(LineAddr(line), bm(&[(w.index() as u8 + 5) % 16]));
            }
        }
        t
    }

    #[test]
    fn replay_matches_offline_engine_for_every_update_mode() {
        let trace = busy_trace(500);
        for spec in [
            "last(pid+pc8)1[direct]",
            "last(pid+pc8)1[forwarded]",
            "last(pid+pc8)1[ordered]",
            "union(pid+pc4+add4)2[forwarded]",
            "inter(dir+add8)3[direct]",
            "pas(pid+pc6)2[direct]",
        ] {
            let scheme: Scheme = spec.parse().unwrap();
            let offline = run_scheme(&trace, &scheme);
            for shards in [1, 3, 8] {
                let engine = ShardedEngine::new(scheme, trace.nodes(), shards);
                engine.replay_trace(&trace);
                let snap = engine.stats();
                assert_eq!(snap.confusion, offline, "{spec} with {shards} shards");
                assert_eq!(snap.scored, trace.len() as u64);
            }
        }
    }

    #[test]
    fn shutdown_table_matches_offline_table_state() {
        let trace = busy_trace(300);
        let scheme: Scheme = "union(pid+pc8)2[direct]".parse().unwrap();
        let engine = ShardedEngine::new(scheme, trace.nodes(), 4);
        engine.replay_trace(&trace);

        // Rebuild the offline table and compare predictions key by key.
        let nb = node_bits(trace.nodes());
        let mut offline = PredictorTable::new(&scheme, trace.nodes());
        for event in trace.events() {
            if event.prev_writer.is_some() {
                offline.update(scheme.index.key_of(event, nb), event.invalidated);
            }
        }
        let keys: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| scheme.index.key_of(e, nb))
            .collect();
        let online_preds = engine.predict_keys(&keys);
        let merged = engine.shutdown();
        assert_eq!(merged.entries_touched(), offline.entries_touched());
        for (key, online) in keys.iter().zip(online_preds) {
            assert_eq!(offline.predict(*key), online, "key {key}");
            assert_eq!(merged.predict(*key), online, "merged key {key}");
        }
    }

    #[test]
    fn streaming_ingest_matches_update_only_sequential_run() {
        let trace = busy_trace(200);
        for spec in ["last(pid+pc8)1[direct]", "last(pid+pc8)1[forwarded]"] {
            let scheme: Scheme = spec.parse().unwrap();
            let engine = ShardedEngine::new(scheme, trace.nodes(), 4);
            let nb = node_bits(trace.nodes());
            let mut offline = PredictorTable::new(&scheme, trace.nodes());
            for event in trace.events() {
                engine.ingest_event(event);
                match scheme.update {
                    UpdateMode::Forwarded => {
                        if let Some(fkey) = scheme.index.forward_key_of(event, nb) {
                            offline.update(fkey, event.invalidated);
                        }
                    }
                    _ => {
                        if event.prev_writer.is_some() {
                            offline.update(scheme.index.key_of(event, nb), event.invalidated);
                        }
                    }
                }
            }
            engine.flush();
            for event in trace.events() {
                let key = scheme.index.key_of(event, nb);
                assert_eq!(
                    engine.predict_keys(&[key])[0],
                    offline.predict(key),
                    "{spec}"
                );
            }
        }
    }

    #[test]
    fn batched_predictions_preserve_order_and_count_queries() {
        let engine = ShardedEngine::new("last(pid)1[direct]".parse().unwrap(), 16, 4);
        // Train each pid entry with a distinct bitmap via streaming ingest.
        for pid in 0..16u8 {
            engine.ingest_event(&SharingEvent::new(
                NodeId(pid),
                Pc(0),
                LineAddr(0),
                NodeId(0),
                bm(&[pid]),
                Some((NodeId(pid), Pc(0))),
            ));
        }
        engine.flush();
        let keys: Vec<u64> = (0..16u64).rev().collect();
        let preds = engine.predict_keys(&keys);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(preds[i], bm(&[key as u8]), "reversed position {i}");
        }
        let snap = engine.stats();
        assert_eq!(snap.queries, 16);
        assert_eq!(snap.updates, 16);
        assert_eq!(snap.entries, 16);
    }

    #[test]
    fn stats_merge_per_shard_counters() {
        let trace = busy_trace(400);
        let scheme: Scheme = "last(pid+pc8)1[direct]".parse().unwrap();
        let engine = ShardedEngine::new(scheme, trace.nodes(), 5);
        engine.replay_trace(&trace);
        let snap = engine.stats();
        let merged: ConfusionMatrix = snap.per_shard.iter().copied().sum();
        assert_eq!(merged, snap.confusion);
        assert_eq!(snap.per_shard.len(), 5);
        assert!(snap.per_shard.iter().filter(|m| m.decisions() > 0).count() > 1);
    }
}
