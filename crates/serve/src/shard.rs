//! The sharded predictor engine: one worker thread per shard, each owning
//! a private [`PredictorTable`] partition. No global lock anywhere.
//!
//! # Why sharding is exact
//!
//! A predictor entry's state depends only on the *ordered sequence of
//! updates to its own key* — entries never interact. The dispatcher routes
//! every operation (update, score, query) to the shard
//! [`shard_of_key`] names, appending to that shard's FIFO inbox in global
//! emission order. Restricted to one key, the shard's inbox order is
//! therefore exactly the sequential engine's order, so each entry moves
//! through the same states it would in one global table. Screening
//! counters are integers and merge by addition, which commutes — the
//! merged totals are bit-identical to a sequential run no matter how keys
//! spread over shards. This holds for *forwarded* update too: the
//! `update(fkey)` and the `score(key)` of one event may land on different
//! shards, but each touches only its own key's entry, and each shard sees
//! its share of operations in emission order.
//!
//! The one thing sharding reorders is *wall-clock interleaving across
//! keys*, which no per-key state can observe.
//!
//! # Supervision
//!
//! A worker never dies from a poisoned operation. Each worker keeps a
//! *checkpoint* (a clone of its state) plus a journal of the operations
//! applied since; a batch that panics is rolled back by restoring the
//! checkpoint, replaying the journal, and re-applying the batch one
//! operation at a time with the poison skipped. Counters are published as
//! *absolute* values after every message (see
//! [`csp_metrics::OnlineConfusion::store`]), so a recovery recomputes
//! them instead of double-counting. Restart totals surface as
//! [`ShardRestart`] entries in [`EngineSnapshot`].

use crate::replication::{ReplOp, ReplicationLog};
use crate::{error::ServeError, Probe};
use csp_core::{node_bits, shard_of_key, PredictorTable, PreparedTrace, Scheme, UpdateMode};
use csp_metrics::{ConfusionMatrix, OnlineConfusion, Screening};
use csp_obs::{Gauge, Histogram, Registry};
use csp_trace::{SharingBitmap, SharingEvent, Trace};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Operations batched into a shard's inbox by the ingest path.
#[derive(Clone, Copy, Debug)]
pub enum IngestOp {
    /// Deliver a feedback bitmap to `key`'s entry.
    Update {
        /// The predictor index key to train.
        key: u64,
        /// The invalidation feedback to shift in.
        feedback: SharingBitmap,
    },
    /// Predict through `key`'s entry and score the prediction against
    /// `actual` in the shard's live confusion counters.
    Score {
        /// The predictor index key to consult.
        key: u64,
        /// The ground-truth reader bitmap for this decision.
        actual: SharingBitmap,
    },
    /// Test-only: panics the applying worker, exercising supervision.
    /// Routed to the shard owning `key`; never affects table state (a
    /// supervised recovery skips it).
    #[doc(hidden)]
    Poison {
        /// Routing key (picks which shard's worker panics).
        key: u64,
    },
}

impl IngestOp {
    /// The key that routes this operation to its shard.
    pub(crate) fn route_key(&self) -> u64 {
        match *self {
            IngestOp::Update { key, .. } | IngestOp::Score { key, .. } => key,
            IngestOp::Poison { key } => key,
        }
    }
}

/// Messages a shard worker consumes.
enum ShardMsg {
    /// A batch of in-order ingest operations.
    Ingest(Vec<IngestOp>),
    /// Predict for `(position, key)` probes and reply. An empty probe list
    /// doubles as a flush barrier: the reply proves every earlier message
    /// has been applied.
    Query {
        probes: Vec<(usize, u64)>,
        reply: Sender<Vec<(usize, SharingBitmap)>>,
    },
    /// Clone the worker's full state and reply with it. In-band, so the
    /// captured state reflects exactly the messages sent before it on
    /// this shard's inbox. Doubles as the worker's recovery checkpoint.
    Snapshot { reply: Sender<ShardState> },
}

/// Point-in-time state of one shard: its table partition plus its share
/// of the engine counters. The unit of durable snapshots
/// (see [`crate::snapshot`]) and of supervised restarts.
#[derive(Clone, Debug)]
pub struct ShardState {
    /// This shard's predictor table partition.
    pub table: PredictorTable,
    /// Screening counters over decisions scored on this shard.
    pub confusion: ConfusionMatrix,
    /// Update operations applied.
    pub updates: u64,
    /// Score operations applied.
    pub scored: u64,
    /// Query probes answered.
    pub queries: u64,
    /// Supervised worker restarts so far.
    pub restarts: u64,
}

impl ShardState {
    /// A fresh, empty shard for `scheme` on an `nodes`-node machine.
    pub fn empty(scheme: &Scheme, nodes: usize) -> Self {
        ShardState {
            table: PredictorTable::new(scheme, nodes),
            confusion: ConfusionMatrix::default(),
            updates: 0,
            scored: 0,
            queries: 0,
            restarts: 0,
        }
    }
}

/// Per-shard live counters, shared lock-free between the worker (writer)
/// and monitoring readers.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Screening counters over every scored decision on this shard.
    pub confusion: OnlineConfusion,
    /// Update operations applied.
    pub updates: AtomicU64,
    /// Score operations applied (replay decisions).
    pub scored: AtomicU64,
    /// Query probes answered (serving decisions; not scored).
    pub queries: AtomicU64,
    /// Predictor entries currently allocated on this shard.
    pub entries: AtomicU64,
    /// Supervised worker restarts (panics recovered in place).
    pub restarts: AtomicU64,
}

/// One shard's supervised-recovery total, surfaced in
/// [`EngineSnapshot::restarts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardRestart {
    /// Which shard restarted.
    pub shard: usize,
    /// How many times its worker has recovered from a panic.
    pub count: u64,
}

/// A merged, point-in-time view of the whole engine's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Merged screening counters over all shards.
    pub confusion: ConfusionMatrix,
    /// Total update operations applied.
    pub updates: u64,
    /// Total scored (replay) decisions.
    pub scored: u64,
    /// Total serving probes answered.
    pub queries: u64,
    /// Total predictor entries allocated.
    pub entries: u64,
    /// Per-shard confusion matrices, in shard order.
    pub per_shard: Vec<ConfusionMatrix>,
    /// Shards that have recovered from worker panics (empty when the
    /// engine has never restarted a worker).
    pub restarts: Vec<ShardRestart>,
}

impl EngineSnapshot {
    /// Screening rates of the merged confusion counters.
    pub fn screening(&self) -> Screening {
        self.confusion.screening()
    }

    /// Total supervised restarts across all shards.
    pub fn total_restarts(&self) -> u64 {
        self.restarts.iter().map(|r| r.count).sum()
    }
}

struct ShardHandle {
    tx: SyncSender<ShardMsg>,
    counters: Arc<ShardCounters>,
    queue_depth: Arc<Gauge>,
    join: Option<JoinHandle<PredictorTable>>,
}

/// The owned instruments one shard worker records into. Registered on
/// the engine registry at spawn time (cold); recording is lock-free.
struct ShardInstruments {
    queue_depth: Arc<Gauge>,
    batch_size: Arc<Histogram>,
    batch_ns: Arc<Histogram>,
    query_ns: Arc<Histogram>,
}

impl ShardInstruments {
    /// Registers shard `i`'s instruments plus callback series that
    /// expose its [`ShardCounters`] — the counters the worker already
    /// publishes — so the scrape reads them with zero extra hot-path
    /// cost.
    fn register(registry: &Registry, i: usize, counters: &Arc<ShardCounters>) -> Self {
        let shard = i.to_string();
        let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
        let poll = |f: fn(&ShardCounters) -> &AtomicU64| {
            let c = Arc::clone(counters);
            move || f(&c).load(Ordering::Relaxed)
        };
        registry.register_counter_fn(
            "csp_shard_updates_total",
            "Predictor update operations applied, per shard.",
            labels,
            poll(|c| &c.updates),
        );
        registry.register_counter_fn(
            "csp_shard_scored_total",
            "Replay decisions scored against ground truth, per shard.",
            labels,
            poll(|c| &c.scored),
        );
        registry.register_counter_fn(
            "csp_shard_queries_total",
            "Serving probes answered, per shard.",
            labels,
            poll(|c| &c.queries),
        );
        registry.register_counter_fn(
            "csp_shard_restarts_total",
            "Supervised worker restarts (panics recovered in place), per shard.",
            labels,
            poll(|c| &c.restarts),
        );
        {
            let c = Arc::clone(counters);
            registry.register_gauge_fn(
                "csp_shard_entries",
                "Predictor entries currently allocated, per shard.",
                labels,
                move || c.entries.load(Ordering::Relaxed) as i64,
            );
        }
        ShardInstruments {
            queue_depth: registry.gauge(
                "csp_shard_queue_depth",
                "Messages waiting in the shard inbox.",
                labels,
            ),
            batch_size: registry.histogram(
                "csp_shard_batch_size",
                "Ingest operations per applied batch.",
                labels,
            ),
            batch_ns: registry.histogram(
                "csp_shard_batch_service_ns",
                "Wall time applying one ingest batch, in nanoseconds.",
                labels,
            ),
            query_ns: registry.histogram(
                "csp_shard_query_service_ns",
                "Per-probe service time in nanoseconds (one observation per answered probe).",
                labels,
            ),
        }
    }
}

/// How many messages a shard inbox buffers before senders block
/// (backpressure: a slow shard throttles ingest instead of ballooning
/// memory).
pub(crate) const INBOX_DEPTH: usize = 64;

/// Events per replay chunk: each chunk becomes one ordered ingest batch
/// (and, on a replicating leader, one journal append of at most twice
/// this many operations).
pub(crate) const REPLAY_CHUNK: usize = 8192;

/// Emits the operations replay dispatches for events `range`, in
/// emission order, mirroring `csp_core::engine::run_scheme` exactly —
/// the single definition both local replay and the push-producer path
/// ([`crate::replication::trace_to_ops`]) share.
#[allow(clippy::too_many_arguments)]
fn emit_replay_ops(
    update: UpdateMode,
    keys: &[u64],
    forward_keys: &[u64],
    has_prev: &[bool],
    invalidated: &[SharingBitmap],
    actuals: &[SharingBitmap],
    range: Range<usize>,
    out: &mut Vec<IngestOp>,
) {
    for i in range {
        let key = keys[i];
        match update {
            UpdateMode::Direct => {
                if has_prev[i] {
                    out.push(IngestOp::Update {
                        key,
                        feedback: invalidated[i],
                    });
                }
                out.push(IngestOp::Score {
                    key,
                    actual: actuals[i],
                });
            }
            UpdateMode::Forwarded => {
                if has_prev[i] {
                    out.push(IngestOp::Update {
                        key: forward_keys[i],
                        feedback: invalidated[i],
                    });
                }
                out.push(IngestOp::Score {
                    key,
                    actual: actuals[i],
                });
            }
            UpdateMode::Ordered => {
                out.push(IngestOp::Score {
                    key,
                    actual: actuals[i],
                });
                out.push(IngestOp::Update {
                    key,
                    feedback: actuals[i],
                });
            }
        }
    }
}

/// The exact operation stream [`ShardedEngine::replay_range`] dispatches
/// for events `range` of a prepared trace, without an engine: the
/// producer side of push-based ingest derives its operations from the
/// same shared preparation replay walks, so a remote push and a local
/// replay cannot disagree.
///
/// # Panics
///
/// Panics if `range` is out of bounds for the prepared trace.
pub fn replay_ops(
    prepared: &PreparedTrace<'_>,
    scheme: &Scheme,
    range: Range<usize>,
) -> Vec<IngestOp> {
    assert!(range.end <= prepared.len(), "replay range out of bounds");
    let stream = prepared.key_stream(scheme.index);
    let mut out = Vec::with_capacity((range.end.saturating_sub(range.start)) * 2);
    emit_replay_ops(
        scheme.update,
        stream.keys(),
        stream.forward_keys(),
        prepared.has_prev(),
        prepared.invalidated(),
        prepared.actuals(),
        range,
        &mut out,
    );
    out
}

/// An online prediction engine partitioned over worker-thread shards.
///
/// Construction spawns the workers; [`shutdown`](ShardedEngine::shutdown)
/// (or drop) joins them. All methods take `&self` — the engine is shared
/// across server connection threads behind an [`Arc`].
///
/// # Example
///
/// ```
/// use csp_serve::{Probe, ShardedEngine};
/// use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
///
/// let mut trace = Trace::new(16);
/// let readers = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
/// for i in 0..50 {
///     let (inv, prev) = if i == 0 {
///         (SharingBitmap::empty(), None)
///     } else {
///         (readers, Some((NodeId(0), Pc(7))))
///     };
///     trace.push(SharingEvent::new(NodeId(0), Pc(7), LineAddr(3), NodeId(1), inv, prev));
/// }
/// trace.set_final_readers(LineAddr(3), readers);
///
/// let engine = ShardedEngine::new("last(pid+pc8)1[direct]".parse().unwrap(), 16, 4);
/// engine.replay_trace(&trace).unwrap();
/// let probe = Probe::new(NodeId(0), Pc(7), NodeId(1), LineAddr(3));
/// assert_eq!(engine.predict(&probe), readers);
/// let stats = engine.stats();
/// assert!(stats.screening().pvp > 0.9);
/// ```
#[derive(Debug)]
pub struct ShardedEngine {
    scheme: Scheme,
    nodes: usize,
    node_bits: u32,
    shards: Vec<ShardHandle>,
    registry: Arc<Registry>,
    /// When attached (leaders only), every replicable ingest routes
    /// through the log: journal append → dispatch under one lock.
    replication: OnceLock<Arc<ReplicationLog>>,
    /// Followers refuse wire-level ingest — they replicate, they don't
    /// originate.
    follower: AtomicBool,
    /// Running op count for ingest acks when no log is attached.
    ingested: AtomicU64,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle").finish_non_exhaustive()
    }
}

impl ShardedEngine {
    /// Spawns `shards` worker threads for `scheme` on an `nodes`-node
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or a worker thread cannot be spawned.
    pub fn new(scheme: Scheme, nodes: usize, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let states = (0..shards)
            .map(|_| ShardState::empty(&scheme, nodes))
            .collect();
        Self::spawn(scheme, nodes, states)
    }

    /// Resurrects an engine from previously captured shard states (e.g. a
    /// durable snapshot loaded by [`crate::snapshot::SnapshotStore`]).
    /// Workers start with the given tables and counter values, so the
    /// engine continues exactly where the states left off.
    ///
    /// # Errors
    ///
    /// [`ServeError::SnapshotMismatch`] when a state's table width does
    /// not match `nodes`, or `states` is empty.
    pub fn with_state(
        scheme: Scheme,
        nodes: usize,
        states: Vec<ShardState>,
    ) -> Result<Self, ServeError> {
        if states.is_empty() {
            return Err(ServeError::SnapshotMismatch {
                detail: "no shard states to restore".to_string(),
            });
        }
        for (i, s) in states.iter().enumerate() {
            if s.table.nodes() != nodes {
                return Err(ServeError::SnapshotMismatch {
                    detail: format!(
                        "shard {i} table is {}-node, engine is {nodes}-node",
                        s.table.nodes()
                    ),
                });
            }
        }
        Ok(Self::spawn(scheme, nodes, states))
    }

    fn spawn(scheme: Scheme, nodes: usize, states: Vec<ShardState>) -> Self {
        let registry = Arc::new(Registry::new());
        let shard_count = states.len();
        registry.register_gauge_fn(
            "csp_engine_shards",
            "Worker shards in this engine.",
            &[],
            move || shard_count as i64,
        );
        registry.register_gauge_fn(
            "csp_engine_nodes",
            "Machine width predictions are scored against.",
            &[],
            move || nodes as i64,
        );
        let handles = states
            .into_iter()
            .enumerate()
            .map(|(i, initial)| {
                let (tx, rx) = sync_channel(INBOX_DEPTH);
                let counters = Arc::new(ShardCounters::default());
                // Publish before the worker thread exists: a restored
                // engine's counters must be readable immediately, not
                // only after the OS happens to schedule each worker.
                publish(&counters, &initial);
                let instruments = ShardInstruments::register(&registry, i, &counters);
                let queue_depth = Arc::clone(&instruments.queue_depth);
                let worker_counters = Arc::clone(&counters);
                let join = std::thread::Builder::new()
                    .name(format!("csp-shard-{i}"))
                    .spawn(move || shard_worker(nodes, rx, &worker_counters, &instruments, initial))
                    .expect("spawn shard worker");
                ShardHandle {
                    tx,
                    counters,
                    queue_depth,
                    join: Some(join),
                }
            })
            .collect();
        ShardedEngine {
            scheme,
            nodes,
            node_bits: node_bits(nodes),
            shards: handles,
            registry,
            replication: OnceLock::new(),
            follower: AtomicBool::new(false),
            ingested: AtomicU64::new(0),
        }
    }

    /// The scheme the engine serves.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The machine width predictions are scored against.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine's metrics registry: per-shard queue-depth gauges,
    /// batch/query service-time histograms, and callback counters over
    /// the live [`ShardCounters`]. Per-engine (not global) so tests and
    /// co-hosted engines never share series; callers hang their own
    /// instruments here too (the wire server, the snapshot store), which
    /// is what makes one `csp-served metrics` scrape cover the whole
    /// process.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The predictor key a probe consults under the engine's scheme.
    pub fn key_of(&self, probe: &Probe) -> u64 {
        self.scheme.index.key(
            probe.writer,
            probe.pc,
            probe.home,
            probe.line,
            self.node_bits,
        )
    }

    fn send(&self, shard: usize, msg: ShardMsg) {
        // Depth counts messages between enqueue here and dequeue in the
        // worker, so a stalled shard shows up as a climbing gauge.
        self.shards[shard].queue_depth.add(1);
        // A send can only fail after a worker panicked, which tears down
        // the run anyway; surface it as the panic it is.
        if self.shards[shard].tx.send(msg).is_err() {
            panic!("shard {shard} worker terminated early");
        }
    }

    /// Streams one live event into the predictor (no scoring): the update
    /// half of the engine loop, for deployments that learn from a
    /// coherence feed while serving queries.
    ///
    /// `direct` trains the current writer's entry, `forwarded` the
    /// previous writer's (Figure 3 of the paper). `ordered` is the
    /// paper's unimplementable-in-hardware oracle — it needs the event's
    /// *future* readers, which a live stream cannot know — so it falls
    /// back to `direct` here; use [`replay_trace`](Self::replay_trace)
    /// for faithful ordered replay of a recorded trace.
    pub fn ingest_event(&self, event: &SharingEvent) {
        let op = match self.scheme.update {
            UpdateMode::Forwarded => {
                self.scheme
                    .index
                    .forward_key_of(event, self.node_bits)
                    .map(|key| IngestOp::Update {
                        key,
                        feedback: event.invalidated,
                    })
            }
            UpdateMode::Direct | UpdateMode::Ordered => {
                event.prev_writer.is_some().then(|| IngestOp::Update {
                    key: self.scheme.index.key_of(event, self.node_bits),
                    feedback: event.invalidated,
                })
            }
        };
        if let Some(op) = op {
            // Through ingest_ops so a replicating leader journals live
            // events exactly like replayed ones.
            self.ingest_ops(vec![op]);
        }
    }

    /// Routes a pre-built batch of raw operations to their shards, in
    /// order. The low-level ingest path behind
    /// [`ingest_event`](Self::ingest_event), exposed for callers that
    /// compute keys themselves (custom feeds, fault-injection tests).
    ///
    /// When a replication log is attached (see
    /// [`attach_replication`](Self::attach_replication)), the batch's
    /// replicable operations are journaled and the dispatch happens
    /// under the log lock, so followers observe the same total order.
    ///
    /// # Panics
    ///
    /// On a replicating leader, a journal write failure panics rather
    /// than dispatching unjournaled operations — continuing would
    /// silently diverge every follower.
    pub fn ingest_ops(&self, ops: Vec<IngestOp>) {
        if let Some(log) = self.replication.get() {
            let repl: Vec<ReplOp> = ops.iter().filter_map(ReplOp::from_ingest).collect();
            log.append_with(&repl, || self.dispatch_ops(ops))
                .expect("replication journal append failed");
        } else {
            self.dispatch_ops(ops);
        }
    }

    /// Buckets `ops` per shard (preserving emission order within each
    /// shard's FIFO) and sends. The raw dispatch under every ingest path.
    fn dispatch_ops(&self, ops: Vec<IngestOp>) {
        let shards = self.shards.len();
        let mut buffers: Vec<Vec<IngestOp>> = vec![Vec::new(); shards];
        for op in ops {
            buffers[shard_of_key(op.route_key(), shards)].push(op);
        }
        for (s, batch) in buffers.into_iter().enumerate() {
            if !batch.is_empty() {
                self.send(s, ShardMsg::Ingest(batch));
            }
        }
    }

    /// Attaches the replication log every subsequent mutation routes
    /// through. Call once, before any traffic (the `csp-served` leader
    /// attaches before warm-up so even warm replay is journaled).
    ///
    /// # Errors
    ///
    /// [`ServeError::Replication`] when a log is already attached.
    pub fn attach_replication(&self, log: Arc<ReplicationLog>) -> Result<(), ServeError> {
        self.replication
            .set(log)
            .map_err(|_| ServeError::Replication {
                detail: "a replication log is already attached to this engine".to_string(),
            })
    }

    /// The attached replication log, if any.
    pub fn replication(&self) -> Option<&Arc<ReplicationLog>> {
        self.replication.get()
    }

    /// Marks this engine a follower: wire-level ingest is refused (the
    /// leader owns the write path) while queries keep serving.
    pub fn mark_follower(&self) {
        self.follower.store(true, Ordering::SeqCst);
    }

    /// Flips a promoted follower into leader mode: wire-level ingest is
    /// accepted again. The fencing epoch — bumped on the attached log
    /// *before* this is called — keeps the deposed leader out.
    pub fn mark_leader(&self) {
        self.follower.store(false, Ordering::SeqCst);
    }

    /// Whether this engine is a read-only follower.
    pub fn is_follower(&self) -> bool {
        self.follower.load(Ordering::SeqCst)
    }

    /// Applies already-replicated operations sent under fencing term
    /// `epoch`, returning the log head after them — the ingest path
    /// behind [`crate::wire::Request::Ingest`] and the follower apply
    /// loop. With a log attached, the head is the durable journal offset
    /// (the operations survive `kill -9` once this returns); without
    /// one, a process-local running count.
    ///
    /// Epoch 0 means "no claim" (an unfenced producer) and is always
    /// accepted; any other epoch below the log's current term is refused
    /// unapplied.
    ///
    /// # Errors
    ///
    /// [`ServeError::Fenced`] for a stale epoch; otherwise a journal
    /// write failure — in both cases the operations were applied
    /// nowhere.
    pub fn ingest_replicated(&self, epoch: u64, ops: &[ReplOp]) -> Result<u64, ServeError> {
        let ingest: Vec<IngestOp> = ops.iter().map(ReplOp::to_ingest).collect();
        if let Some(log) = self.replication.get() {
            let current = log.epoch();
            if epoch != 0 && epoch < current {
                return Err(ServeError::Fenced {
                    claimed: epoch,
                    current,
                });
            }
            let (head, ()) = log.append_with(ops, || self.dispatch_ops(ingest))?;
            Ok(head)
        } else {
            self.dispatch_ops(ingest);
            let n = ops.len() as u64;
            Ok(self.ingested.fetch_add(n, Ordering::Relaxed) + n)
        }
    }

    /// Replays a full recorded trace through the engine, updating *and
    /// scoring* every decision exactly as the offline engine
    /// (`csp_core::engine::run_scheme`) does — including the two-pass
    /// `ordered` oracle, whose ground truth the trace supplies.
    ///
    /// After this returns (it flushes internally), the engine's
    /// [`stats`](Self::stats) confusion counters are bit-identical to the
    /// offline run's confusion matrix, and its tables are bit-identical
    /// to the offline tables — see `tests/equivalence.rs`.
    ///
    /// # Errors
    ///
    /// [`ServeError::WidthMismatch`] when the trace's machine width
    /// differs from the engine's.
    pub fn replay_trace(&self, trace: &Trace) -> Result<(), ServeError> {
        self.replay_prepared(&PreparedTrace::new(trace))
    }

    /// [`replay_trace`](Self::replay_trace) over an already-prepared
    /// trace: the actuals and the key stream come from the *same* shared
    /// computation (`csp_core::KeyStream`) the offline engine walks, so
    /// online and offline replay cannot derive keys differently. A caller
    /// replaying one trace through several engines (or schemes) shares
    /// one preparation across all of them.
    ///
    /// # Errors
    ///
    /// [`ServeError::WidthMismatch`] when the trace's machine width
    /// differs from the engine's.
    pub fn replay_prepared(&self, prepared: &PreparedTrace<'_>) -> Result<(), ServeError> {
        self.replay_range(prepared, 0..prepared.len())
    }

    /// Replays only events `range` of a prepared trace, then flushes.
    ///
    /// The building block of crash-safe replay: a caller alternates
    /// `replay_range` chunks with [`snapshot_state`](Self::snapshot_state)
    /// calls, and because each chunk flushes before returning, every
    /// snapshot captures *exactly* the events replayed so far — an exact
    /// prefix cut, restorable to bit-identical state.
    ///
    /// # Errors
    ///
    /// [`ServeError::WidthMismatch`] when the trace's machine width
    /// differs from the engine's.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds for the prepared trace.
    pub fn replay_range(
        &self,
        prepared: &PreparedTrace<'_>,
        range: Range<usize>,
    ) -> Result<(), ServeError> {
        if prepared.nodes() != self.nodes {
            return Err(ServeError::WidthMismatch {
                trace_nodes: prepared.nodes(),
                engine_nodes: self.nodes,
            });
        }
        assert!(range.end <= prepared.len(), "replay range out of bounds");
        let stream = prepared.key_stream(self.scheme.index);
        // Chunked so a replicating leader journals in bounded segments
        // and a plain engine bounds its in-flight batch memory; order is
        // the emission order either way.
        let mut pos = range.start;
        while pos < range.end {
            let end = range.end.min(pos + REPLAY_CHUNK);
            let mut ops = Vec::with_capacity((end - pos) * 2);
            emit_replay_ops(
                self.scheme.update,
                stream.keys(),
                stream.forward_keys(),
                prepared.has_prev(),
                prepared.invalidated(),
                prepared.actuals(),
                pos..end,
                &mut ops,
            );
            self.ingest_ops(ops);
            pos = end;
        }
        self.flush();
        Ok(())
    }

    /// Captures every shard's state, in shard order.
    ///
    /// The capture is *in-band*: each shard serves it from its inbox, so
    /// the state reflects exactly the operations sent to that shard
    /// before this call. With no concurrent senders (e.g. between
    /// [`replay_range`](Self::replay_range) chunks) the cut is an exact
    /// global prefix; with live traffic each shard's state is a valid
    /// per-shard prefix — restoring yields a correct (possibly slightly
    /// stale) engine. Serving a snapshot also refreshes the worker's
    /// recovery checkpoint.
    pub fn snapshot_state(&self) -> Vec<ShardState> {
        // One reply channel per shard keeps the result in shard order
        // regardless of which worker answers first.
        let pending: Vec<_> = (0..self.shards.len())
            .map(|s| {
                let (tx, rx) = std::sync::mpsc::channel();
                self.send(s, ShardMsg::Snapshot { reply: tx });
                rx
            })
            .collect();
        pending
            .into_iter()
            .enumerate()
            .map(|(s, rx)| {
                rx.recv()
                    .unwrap_or_else(|_| panic!("shard {s} worker terminated early"))
            })
            .collect()
    }

    /// Predicts the reader bitmap for one probe.
    pub fn predict(&self, probe: &Probe) -> SharingBitmap {
        self.predict_keys(&[self.key_of(probe)])[0]
    }

    /// Predicts a batch of probes, preserving input order.
    pub fn predict_batch(&self, probes: &[Probe]) -> Vec<SharingBitmap> {
        let keys: Vec<u64> = probes.iter().map(|p| self.key_of(p)).collect();
        self.predict_keys(&keys)
    }

    /// Predicts for raw predictor keys, preserving input order.
    pub fn predict_keys(&self, keys: &[u64]) -> Vec<SharingBitmap> {
        let shards = self.shards.len();
        let mut per_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); shards];
        for (pos, &key) in keys.iter().enumerate() {
            per_shard[shard_of_key(key, shards)].push((pos, key));
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let mut outstanding = 0usize;
        for (s, probes) in per_shard.into_iter().enumerate() {
            if probes.is_empty() {
                continue;
            }
            outstanding += 1;
            self.send(
                s,
                ShardMsg::Query {
                    probes,
                    reply: reply_tx.clone(),
                },
            );
        }
        let mut out = vec![SharingBitmap::empty(); keys.len()];
        for _ in 0..outstanding {
            let part = reply_rx.recv().expect("shard worker terminated early");
            for (pos, bitmap) in part {
                out[pos] = bitmap;
            }
        }
        out
    }

    /// Blocks until every shard has applied all previously sent
    /// operations (an empty query round-trip per shard).
    pub fn flush(&self) {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        for s in 0..self.shards.len() {
            self.send(
                s,
                ShardMsg::Query {
                    probes: Vec::new(),
                    reply: reply_tx.clone(),
                },
            );
        }
        for _ in 0..self.shards.len() {
            let _ = reply_rx.recv().expect("shard worker terminated early");
        }
    }

    /// A live snapshot of the merged per-shard counters.
    ///
    /// Lock-free: reads the atomic counters without interrupting the
    /// workers. Call [`flush`](Self::flush) first when the snapshot must
    /// reflect everything already *sent* (e.g. after a replay).
    pub fn stats(&self) -> EngineSnapshot {
        let per_shard: Vec<ConfusionMatrix> = self
            .shards
            .iter()
            .map(|s| s.counters.confusion.snapshot())
            .collect();
        let confusion = csp_metrics::online::merge_snapshots(per_shard.iter().copied());
        let sum = |f: fn(&ShardCounters) -> &AtomicU64| {
            self.shards
                .iter()
                .map(|s| f(&s.counters).load(Ordering::Relaxed))
                .sum()
        };
        let restarts = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(shard, s)| {
                let count = s.counters.restarts.load(Ordering::Relaxed);
                (count > 0).then_some(ShardRestart { shard, count })
            })
            .collect();
        EngineSnapshot {
            confusion,
            updates: sum(|c| &c.updates),
            scored: sum(|c| &c.scored),
            queries: sum(|c| &c.queries),
            entries: sum(|c| &c.entries),
            per_shard,
            restarts,
        }
    }

    /// Drains the shards, joins the workers, and folds the shard tables
    /// into one global [`PredictorTable`] (e.g. for snapshot/restore or
    /// offline inspection).
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn shutdown(mut self) -> PredictorTable {
        let mut global = PredictorTable::new(&self.scheme, self.nodes);
        for shard in self.shards.drain(..) {
            drop(shard.tx); // close the inbox: the worker's recv loop ends
            if let Some(join) = shard.join {
                match join.join() {
                    Ok(table) => global.absorb(table),
                    Err(_) => panic!("shard worker panicked"),
                }
            }
        }
        global
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        for shard in self.shards.drain(..) {
            drop(shard.tx);
            if let Some(join) = shard.join {
                let _ = join.join();
            }
        }
    }
}

/// Journal length at which a worker rolls its recovery checkpoint
/// forward (clone the state, clear the journal). Bounds both recovery
/// time and journal memory.
const JOURNAL_CAP: usize = 1 << 16;

/// Applies one ingest operation to a shard's state. The only function a
/// supervised recovery has to re-run, so *all* state mutation funnels
/// through it.
#[inline]
pub(crate) fn apply_op(state: &mut ShardState, op: IngestOp, nodes: usize) {
    match op {
        IngestOp::Update { key, feedback } => {
            state.table.update(key, feedback);
            state.updates += 1;
        }
        IngestOp::Score { key, actual } => {
            let predicted = state.table.predict(key);
            state.confusion.record(predicted, actual, nodes);
            state.scored += 1;
        }
        IngestOp::Poison { .. } => panic!("injected poison op"),
    }
}

/// Publishes a worker's counters as absolute values. Absolute (not
/// incremental) publication is what makes supervised recovery exact:
/// after a restart the worker recomputes its counters from the
/// checkpoint and the replayed journal, and the next publish overwrites
/// any partially counted batch.
fn publish(counters: &ShardCounters, state: &ShardState) {
    counters.confusion.store(&state.confusion);
    counters.updates.store(state.updates, Ordering::Relaxed);
    counters.scored.store(state.scored, Ordering::Relaxed);
    counters.queries.store(state.queries, Ordering::Relaxed);
    counters
        .entries
        .store(state.table.entries_touched() as u64, Ordering::Relaxed);
    counters.restarts.store(state.restarts, Ordering::Relaxed);
}

/// The shard worker loop: owns this shard's state, applies inbox
/// messages in FIFO order, publishes counters, and supervises itself —
/// a panic while applying a batch is recovered in place from the last
/// checkpoint plus the journal, with the poisonous operation skipped.
fn shard_worker(
    nodes: usize,
    rx: Receiver<ShardMsg>,
    counters: &ShardCounters,
    instruments: &ShardInstruments,
    initial: ShardState,
) -> PredictorTable {
    let mut state = initial;
    let mut checkpoint = state.clone();
    let mut journal: Vec<IngestOp> = Vec::new();
    publish(counters, &state);
    while let Ok(msg) = rx.recv() {
        instruments.queue_depth.sub(1);
        match msg {
            ShardMsg::Ingest(ops) => {
                let started = Instant::now();
                let healthy = catch_unwind(AssertUnwindSafe(|| {
                    for &op in &ops {
                        apply_op(&mut state, op, nodes);
                    }
                }))
                .is_ok();
                instruments.batch_size.record(ops.len() as u64);
                if healthy {
                    journal.extend_from_slice(&ops);
                } else {
                    // The batch died partway through and may have left
                    // `state` inconsistent. Discard it: rebuild from the
                    // checkpoint, re-run the journal, then re-apply this
                    // batch one op at a time with the poison skipped.
                    // Queries are not journaled (they don't mutate the
                    // table), so carry their count over directly.
                    let restarts = state.restarts + 1;
                    let queries = state.queries;
                    state = checkpoint.clone();
                    state.restarts = restarts;
                    state.queries = queries;
                    for &op in &journal {
                        let _ = catch_unwind(AssertUnwindSafe(|| apply_op(&mut state, op, nodes)));
                    }
                    for &op in &ops {
                        if catch_unwind(AssertUnwindSafe(|| apply_op(&mut state, op, nodes)))
                            .is_ok()
                        {
                            journal.push(op);
                        }
                    }
                }
                if journal.len() >= JOURNAL_CAP {
                    checkpoint = state.clone();
                    journal.clear();
                }
                instruments.batch_ns.record_duration(started.elapsed());
            }
            ShardMsg::Query { probes, reply } => {
                let started = Instant::now();
                let answered = probes.len() as u64;
                state.queries += answered;
                let out: Vec<(usize, SharingBitmap)> = probes
                    .into_iter()
                    .map(|(pos, key)| (pos, state.table.predict(key)))
                    .collect();
                // One observation per answered probe, so the histogram
                // count tracks the queries counter exactly (a zero-probe
                // flush barrier records nothing). Amortized: one clock
                // read and three atomic adds per message, not per probe.
                instruments
                    .query_ns
                    .record_duration_n(started.elapsed(), answered);
                // Publish before replying: a querier that reads stats()
                // right after the reply must see its own queries counted
                // (the reply is the synchronization point).
                publish(counters, &state);
                // A dropped reply receiver just means the querier went
                // away; the prediction work is already done.
                let _ = reply.send(out);
            }
            ShardMsg::Snapshot { reply } => {
                // The captured state doubles as the recovery checkpoint:
                // both need the same "known consistent point" clone.
                checkpoint = state.clone();
                journal.clear();
                let _ = reply.send(checkpoint.clone());
            }
        }
        publish(counters, &state);
    }
    state.table
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_core::engine::run_scheme;
    use csp_trace::{LineAddr, NodeId, Pc};

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    /// Alternating writers over several lines: exercises forwarded update
    /// across shard boundaries.
    fn busy_trace(events: usize) -> Trace {
        let mut t = Trace::new(16);
        let mut prev: Vec<Option<(NodeId, Pc)>> = vec![None; 8];
        for i in 0..events {
            let line = (i % 8) as u64;
            let writer = NodeId(((i / 8) % 4) as u8);
            let pc = Pc(100 + (i % 3) as u32);
            let inv = match prev[line as usize] {
                None => SharingBitmap::empty(),
                Some((w, _)) => bm(&[(w.index() as u8 + 5) % 16, (w.index() as u8 + 6) % 16]),
            };
            t.push(SharingEvent::new(
                writer,
                pc,
                LineAddr(line),
                NodeId((line % 4) as u8),
                inv,
                prev[line as usize],
            ));
            prev[line as usize] = Some((writer, pc));
        }
        for line in 0..8u64 {
            if let Some((w, _)) = prev[line as usize] {
                t.set_final_readers(LineAddr(line), bm(&[(w.index() as u8 + 5) % 16]));
            }
        }
        t
    }

    #[test]
    fn replay_matches_offline_engine_for_every_update_mode() {
        let trace = busy_trace(500);
        for spec in [
            "last(pid+pc8)1[direct]",
            "last(pid+pc8)1[forwarded]",
            "last(pid+pc8)1[ordered]",
            "union(pid+pc4+add4)2[forwarded]",
            "inter(dir+add8)3[direct]",
            "pas(pid+pc6)2[direct]",
        ] {
            let scheme: Scheme = spec.parse().unwrap();
            let offline = run_scheme(&trace, &scheme);
            for shards in [1, 3, 8] {
                let engine = ShardedEngine::new(scheme, trace.nodes(), shards);
                engine.replay_trace(&trace).unwrap();
                let snap = engine.stats();
                assert_eq!(snap.confusion, offline, "{spec} with {shards} shards");
                assert_eq!(snap.scored, trace.len() as u64);
            }
        }
    }

    #[test]
    fn shutdown_table_matches_offline_table_state() {
        let trace = busy_trace(300);
        let scheme: Scheme = "union(pid+pc8)2[direct]".parse().unwrap();
        let engine = ShardedEngine::new(scheme, trace.nodes(), 4);
        engine.replay_trace(&trace).unwrap();

        // Rebuild the offline table and compare predictions key by key.
        let nb = node_bits(trace.nodes());
        let mut offline = PredictorTable::new(&scheme, trace.nodes());
        for event in trace.events() {
            if event.prev_writer.is_some() {
                offline.update(scheme.index.key_of(event, nb), event.invalidated);
            }
        }
        let keys: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| scheme.index.key_of(e, nb))
            .collect();
        let online_preds = engine.predict_keys(&keys);
        let merged = engine.shutdown();
        assert_eq!(merged.entries_touched(), offline.entries_touched());
        for (key, online) in keys.iter().zip(online_preds) {
            assert_eq!(offline.predict(*key), online, "key {key}");
            assert_eq!(merged.predict(*key), online, "merged key {key}");
        }
    }

    #[test]
    fn streaming_ingest_matches_update_only_sequential_run() {
        let trace = busy_trace(200);
        for spec in ["last(pid+pc8)1[direct]", "last(pid+pc8)1[forwarded]"] {
            let scheme: Scheme = spec.parse().unwrap();
            let engine = ShardedEngine::new(scheme, trace.nodes(), 4);
            let nb = node_bits(trace.nodes());
            let mut offline = PredictorTable::new(&scheme, trace.nodes());
            for event in trace.events() {
                engine.ingest_event(event);
                match scheme.update {
                    UpdateMode::Forwarded => {
                        if let Some(fkey) = scheme.index.forward_key_of(event, nb) {
                            offline.update(fkey, event.invalidated);
                        }
                    }
                    _ => {
                        if event.prev_writer.is_some() {
                            offline.update(scheme.index.key_of(event, nb), event.invalidated);
                        }
                    }
                }
            }
            engine.flush();
            for event in trace.events() {
                let key = scheme.index.key_of(event, nb);
                assert_eq!(
                    engine.predict_keys(&[key])[0],
                    offline.predict(key),
                    "{spec}"
                );
            }
        }
    }

    #[test]
    fn batched_predictions_preserve_order_and_count_queries() {
        let engine = ShardedEngine::new("last(pid)1[direct]".parse().unwrap(), 16, 4);
        // Train each pid entry with a distinct bitmap via streaming ingest.
        for pid in 0..16u8 {
            engine.ingest_event(&SharingEvent::new(
                NodeId(pid),
                Pc(0),
                LineAddr(0),
                NodeId(0),
                bm(&[pid]),
                Some((NodeId(pid), Pc(0))),
            ));
        }
        engine.flush();
        let keys: Vec<u64> = (0..16u64).rev().collect();
        let preds = engine.predict_keys(&keys);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(preds[i], bm(&[key as u8]), "reversed position {i}");
        }
        let snap = engine.stats();
        assert_eq!(snap.queries, 16);
        assert_eq!(snap.updates, 16);
        assert_eq!(snap.entries, 16);
    }

    #[test]
    fn width_mismatch_is_a_typed_error_not_a_panic() {
        let trace = busy_trace(10); // 16-node trace
        let engine = ShardedEngine::new("last(pid)1[direct]".parse().unwrap(), 32, 2);
        match engine.replay_trace(&trace) {
            Err(ServeError::WidthMismatch {
                trace_nodes: 16,
                engine_nodes: 32,
            }) => {}
            other => panic!("expected WidthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_batch_recovers_to_the_unpoisoned_state() {
        let trace = busy_trace(400);
        let scheme: Scheme = "last(pid+pc8)1[direct]".parse().unwrap();
        let clean = ShardedEngine::new(scheme, trace.nodes(), 3);
        clean.replay_trace(&trace).unwrap();

        // Same replay, but with poison ops injected between chunks.
        let poisoned = ShardedEngine::new(scheme, trace.nodes(), 3);
        let prepared = PreparedTrace::new(&trace);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panics
        poisoned.replay_range(&prepared, 0..200).unwrap();
        // One ingest_ops call per poison: each arrives as its own batch,
        // so each is its own supervised recovery.
        for key in 0..3 {
            poisoned.ingest_ops(vec![IngestOp::Poison { key }]);
        }
        poisoned.replay_range(&prepared, 200..trace.len()).unwrap();
        std::panic::set_hook(hook);

        let (a, b) = (clean.stats(), poisoned.stats());
        assert_eq!(a.confusion, b.confusion);
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.scored, b.scored);
        assert_eq!(a.entries, b.entries);
        assert!(a.restarts.is_empty());
        assert_eq!(b.total_restarts(), 3, "restarts: {:?}", b.restarts);
        // Tables survived too: the merged tables predict identically.
        let nb = node_bits(trace.nodes());
        let keys: Vec<u64> = trace
            .events()
            .iter()
            .map(|e| scheme.index.key_of(e, nb))
            .collect();
        let (ta, tb) = (clean.shutdown(), poisoned.shutdown());
        for key in keys {
            assert_eq!(ta.predict(key), tb.predict(key), "key {key}");
        }
    }

    #[test]
    fn snapshot_then_restore_continues_bit_identically() {
        let trace = busy_trace(600);
        for spec in ["union(pid+pc8)2[forwarded]", "pas(pid+pc6)2[direct]"] {
            let scheme: Scheme = spec.parse().unwrap();
            let reference = ShardedEngine::new(scheme, trace.nodes(), 4);
            reference.replay_trace(&trace).unwrap();

            // Replay half, capture, rebuild a new engine from the capture,
            // replay the rest there.
            let prepared = PreparedTrace::new(&trace);
            let first = ShardedEngine::new(scheme, trace.nodes(), 4);
            first.replay_range(&prepared, 0..300).unwrap();
            let states = first.snapshot_state();
            drop(first);
            let restored = ShardedEngine::with_state(scheme, trace.nodes(), states).unwrap();
            restored.replay_range(&prepared, 300..trace.len()).unwrap();

            let (a, b) = (reference.stats(), restored.stats());
            assert_eq!(a.confusion, b.confusion, "{spec}");
            assert_eq!(a.updates, b.updates, "{spec}");
            assert_eq!(a.scored, b.scored, "{spec}");
            assert_eq!(a.entries, b.entries, "{spec}");
            let nb = node_bits(trace.nodes());
            let keys: Vec<u64> = trace
                .events()
                .iter()
                .map(|e| scheme.index.key_of(e, nb))
                .collect();
            assert_eq!(
                reference.predict_keys(&keys),
                restored.predict_keys(&keys),
                "{spec}"
            );
        }
    }

    #[test]
    fn with_state_rejects_mismatched_width() {
        let scheme: Scheme = "last(pid)1[direct]".parse().unwrap();
        let states = vec![ShardState::empty(&scheme, 16)];
        match ShardedEngine::with_state(scheme, 32, states) {
            Err(ServeError::SnapshotMismatch { .. }) => {}
            other => panic!("expected SnapshotMismatch, got {other:?}"),
        }
    }

    #[test]
    fn stats_merge_per_shard_counters() {
        let trace = busy_trace(400);
        let scheme: Scheme = "last(pid+pc8)1[direct]".parse().unwrap();
        let engine = ShardedEngine::new(scheme, trace.nodes(), 5);
        engine.replay_trace(&trace).unwrap();
        let snap = engine.stats();
        let merged: ConfusionMatrix = snap.per_shard.iter().copied().sum();
        assert_eq!(merged, snap.confusion);
        assert_eq!(snap.per_shard.len(), 5);
        assert!(snap.per_shard.iter().filter(|m| m.decisions() > 0).count() > 1);
    }
}
