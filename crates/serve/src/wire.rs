//! The wire protocol: length-prefixed, CRC32c-checksummed binary frames.
//!
//! Same conventions as the on-disk trace format (`csp_trace::io`):
//! little-endian fixed-width fields, CRC32c ([`csp_trace::crc32c`]) over
//! the payload so a corrupted frame is detected instead of silently
//! mis-predicting. See `crates/serve/PROTOCOL.md` for the normative spec.
//!
//! ```text
//! frame: len[4] payload[len] crc[4]      (crc = CRC32c of payload)
//! payload: type[1] body[...]
//! ```
//!
//! # Example
//!
//! ```
//! use csp_serve::wire::{self, Request};
//! use csp_serve::Probe;
//! use csp_trace::{LineAddr, NodeId, Pc};
//!
//! let mut buf = Vec::new();
//! let req = Request::Predict(Probe::new(NodeId(1), Pc(7), NodeId(0), LineAddr(42)));
//! wire::write_request(&mut buf, &req)?;
//! let back = wire::read_request(&mut buf.as_slice())?;
//! assert_eq!(back, req);
//! # Ok::<(), std::io::Error>(())
//! ```

use crate::replication::{decode_ops, ReplOp, MAX_SEGMENT_OPS};
use crate::{EngineSnapshot, Probe};
use csp_metrics::ConfusionMatrix;
use csp_trace::{crc32c, LineAddr, NodeId, Pc, SharingBitmap};
use std::io::{self, Read, Write};

/// Hard ceiling on payload size: fits the largest batch comfortably and
/// bounds what a malformed length prefix can make the peer allocate.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Maximum probes per [`Request::PredictBatch`] (the body counts them in
/// a `u16`).
pub const MAX_BATCH: usize = u16::MAX as usize;

const T_PING: u8 = 0x01;
const T_PREDICT: u8 = 0x02;
const T_PREDICT_BATCH: u8 = 0x03;
const T_STATS: u8 = 0x04;
const T_METRICS: u8 = 0x05;
const T_INGEST: u8 = 0x06;
const T_SUBSCRIBE: u8 = 0x07;
const T_PROMOTE: u8 = 0x08;
const T_PONG: u8 = 0x81;
const T_PREDICTION: u8 = 0x82;
const T_PREDICTION_BATCH: u8 = 0x83;
const T_STATS_SNAPSHOT: u8 = 0x84;
const T_METRICS_TEXT: u8 = 0x85;
const T_INGEST_ACK: u8 = 0x86;
const T_JOURNAL_SEGMENT: u8 = 0x87;
const T_PROMOTED: u8 = 0x88;
const T_ERROR: u8 = 0xFF;

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Predict the reader bitmap for one probe.
    Predict(Probe),
    /// Predict for a batch of probes (answered in order).
    PredictBatch(Vec<Probe>),
    /// Fetch the engine's merged live statistics.
    Stats,
    /// Fetch the full metrics registry as Prometheus-style text.
    Metrics,
    /// Append replicated operations to the leader's log (a push-based
    /// trace producer, or any mutating client). Acked with
    /// [`Response::IngestAck`] once the operations are durable and
    /// ordered; refused on followers and on fingerprint mismatch.
    Ingest {
        /// The sender's [`crate::replication::fingerprint`]; must match
        /// the engine's.
        fingerprint: u32,
        /// The sender's fencing epoch. 0 means "no claim" (an unfenced
        /// producer); any other value below the receiver's current epoch
        /// identifies a deposed leader and the frame is refused.
        epoch: u64,
        /// The operations, in intended log order (at most
        /// [`MAX_SEGMENT_OPS`]).
        ops: Vec<ReplOp>,
    },
    /// Switch this connection into a one-way journal stream: the server
    /// answers with [`Response::JournalSegment`] frames (including empty
    /// heartbeats) from offset `from` until either side drops.
    Subscribe {
        /// The subscriber's [`crate::replication::fingerprint`].
        fingerprint: u32,
        /// The highest fencing epoch the subscriber has observed. A
        /// server whose own epoch is *lower* is stale and refuses to
        /// serve rather than feed the subscriber deposed history.
        epoch: u64,
        /// The log offset to resume from.
        from: u64,
    },
    /// Promote this server to leadership: bump its fencing epoch to at
    /// least `min_epoch` (always past its current term), durably rotate
    /// the journal, and leave follower mode. Answered with
    /// [`Response::Promoted`]. Idempotent — promoting a leader merely
    /// advances its term.
    Promote {
        /// The sender's [`crate::replication::fingerprint`].
        fingerprint: u32,
        /// Lower bound for the new term (0 = just "next term").
        min_epoch: u64,
    },
}

/// The statistics body of a [`Response::Stats`] frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsReply {
    /// The scheme the engine serves, in paper notation.
    pub scheme: String,
    /// Machine width.
    pub nodes: u8,
    /// Shard count.
    pub shards: u16,
    /// Total update operations applied.
    pub updates: u64,
    /// Total scored (replay) decisions.
    pub scored: u64,
    /// Total serving probes answered.
    pub queries: u64,
    /// Predictor entries allocated.
    pub entries: u64,
    /// Supervised shard-worker restarts (see
    /// [`crate::ShardRestart`]); nonzero means the engine recovered from
    /// worker panics.
    pub restarts: u64,
    /// Merged screening counters.
    pub confusion: ConfusionMatrix,
}

impl StatsReply {
    /// Builds the reply from an engine snapshot.
    pub fn from_snapshot(scheme: &str, nodes: usize, shards: usize, s: &EngineSnapshot) -> Self {
        StatsReply {
            scheme: scheme.to_string(),
            nodes: nodes as u8,
            shards: shards as u16,
            updates: s.updates,
            scored: s.scored,
            queries: s.queries,
            entries: s.entries,
            restarts: s.total_restarts(),
            confusion: s.confusion,
        }
    }
}

/// The body of a [`Response::JournalSegment`] frame: one slice of the
/// leader's replication log, self-describing enough for the subscriber
/// to verify compatibility (`fingerprint`), continuity (`start` must be
/// its next offset), and lag (`head`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentFrame {
    /// The leader's [`crate::replication::fingerprint`].
    pub fingerprint: u32,
    /// The fencing epoch the segment was cut under. Subscribers drop
    /// streams whose epoch regresses below what they have observed.
    pub epoch: u64,
    /// Log offset of `ops[0]`.
    pub start: u64,
    /// The leader's log head when the segment was cut.
    pub head: u64,
    /// Lease grant in milliseconds: every segment (heartbeats included)
    /// renews the subscriber's time-boxed belief in the leader's
    /// liveness for this long. 0 = no lease advertised.
    pub lease_ms: u32,
    /// The operations; empty is a heartbeat (`start == head` then).
    pub ops: Vec<ReplOp>,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Predict`].
    Prediction(SharingBitmap),
    /// Answer to [`Request::PredictBatch`], in request order.
    PredictionBatch(Vec<SharingBitmap>),
    /// Answer to [`Request::Stats`].
    Stats(StatsReply),
    /// Answer to [`Request::Metrics`]: the registry as Prometheus-style
    /// text exposition (see `csp_obs::Registry::encode_prometheus`).
    /// Carried with a `u32` length — a loaded many-shard registry
    /// outgrows the `u16` strings other frames use.
    Metrics(String),
    /// Answer to [`Request::Ingest`]: the log head after the append —
    /// the operations at offsets `[head - ops.len(), head)` are durable
    /// and ordered.
    IngestAck {
        /// The leader's log head after this append.
        head: u64,
    },
    /// One streamed slice of the replication log (see
    /// [`Request::Subscribe`]).
    JournalSegment(SegmentFrame),
    /// Answer to [`Request::Promote`]: the server now leads.
    Promoted {
        /// The fencing epoch the server now serves under.
        epoch: u64,
        /// Its log head at promotion.
        head: u64,
    },
    /// The request could not be served; the connection stays usable.
    Error(String),
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_probe(buf: &mut Vec<u8>, p: &Probe) {
    buf.push(p.writer.index() as u8);
    buf.extend_from_slice(&p.pc.0.to_le_bytes());
    buf.push(p.home.index() as u8);
    buf.extend_from_slice(&p.line.0.to_le_bytes());
}

fn get_probe(b: &[u8]) -> Probe {
    Probe {
        writer: NodeId(b[0]),
        pc: Pc(u32::from_le_bytes([b[1], b[2], b[3], b[4]])),
        home: NodeId(b[5]),
        line: LineAddr(u64::from_le_bytes([
            b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13],
        ])),
    }
}

const PROBE_LEN: usize = 14;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    buf.extend_from_slice(&(bytes.len().min(u16::MAX as usize) as u16).to_le_bytes());
    buf.extend_from_slice(&bytes[..bytes.len().min(u16::MAX as usize)]);
}

fn get_str(b: &[u8]) -> io::Result<(String, usize)> {
    if b.len() < 2 {
        return Err(invalid("truncated string"));
    }
    let len = u16::from_le_bytes([b[0], b[1]]) as usize;
    if b.len() < 2 + len {
        return Err(invalid("truncated string body"));
    }
    let s = std::str::from_utf8(&b[2..2 + len])
        .map_err(|_| invalid("string is not UTF-8"))?
        .to_string();
    Ok((s, 2 + len))
}

/// Encodes a request into a payload (type byte + body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Ping => buf.push(T_PING),
        Request::Predict(p) => {
            buf.push(T_PREDICT);
            put_probe(&mut buf, p);
        }
        Request::PredictBatch(probes) => {
            buf.push(T_PREDICT_BATCH);
            let n = probes.len().min(MAX_BATCH);
            buf.extend_from_slice(&(n as u16).to_le_bytes());
            for p in &probes[..n] {
                put_probe(&mut buf, p);
            }
        }
        Request::Stats => buf.push(T_STATS),
        Request::Metrics => buf.push(T_METRICS),
        Request::Ingest {
            fingerprint,
            epoch,
            ops,
        } => {
            buf.push(T_INGEST);
            buf.extend_from_slice(&fingerprint.to_le_bytes());
            buf.extend_from_slice(&epoch.to_le_bytes());
            let n = ops.len().min(MAX_SEGMENT_OPS);
            buf.extend_from_slice(&(n as u32).to_le_bytes());
            for op in &ops[..n] {
                op.encode_into(&mut buf);
            }
        }
        Request::Subscribe {
            fingerprint,
            epoch,
            from,
        } => {
            buf.push(T_SUBSCRIBE);
            buf.extend_from_slice(&fingerprint.to_le_bytes());
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(&from.to_le_bytes());
        }
        Request::Promote {
            fingerprint,
            min_epoch,
        } => {
            buf.push(T_PROMOTE);
            buf.extend_from_slice(&fingerprint.to_le_bytes());
            buf.extend_from_slice(&min_epoch.to_le_bytes());
        }
    }
    buf
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on unknown types or malformed bodies.
pub fn decode_request(payload: &[u8]) -> io::Result<Request> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| invalid("empty payload"))?;
    match tag {
        T_PING if body.is_empty() => Ok(Request::Ping),
        T_PREDICT if body.len() == PROBE_LEN => Ok(Request::Predict(get_probe(body))),
        T_PREDICT_BATCH => {
            if body.len() < 2 {
                return Err(invalid("truncated batch header"));
            }
            let n = u16::from_le_bytes([body[0], body[1]]) as usize;
            let rest = &body[2..];
            if rest.len() != n * PROBE_LEN {
                return Err(invalid(format!(
                    "batch of {n} probes needs {} body bytes, got {}",
                    n * PROBE_LEN,
                    rest.len()
                )));
            }
            Ok(Request::PredictBatch(
                rest.chunks_exact(PROBE_LEN).map(get_probe).collect(),
            ))
        }
        T_STATS if body.is_empty() => Ok(Request::Stats),
        T_METRICS if body.is_empty() => Ok(Request::Metrics),
        T_INGEST => {
            if body.len() < 16 {
                return Err(invalid("truncated ingest header"));
            }
            let fingerprint = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
            let epoch = get_u64(body, 4);
            let count = u32::from_le_bytes([body[12], body[13], body[14], body[15]]);
            // decode_ops validates the count against the byte length
            // (and the MAX_SEGMENT_OPS cap) before allocating.
            let ops = decode_ops(count, &body[16..])?;
            Ok(Request::Ingest {
                fingerprint,
                epoch,
                ops,
            })
        }
        T_SUBSCRIBE if body.len() == 20 => Ok(Request::Subscribe {
            fingerprint: u32::from_le_bytes([body[0], body[1], body[2], body[3]]),
            epoch: get_u64(body, 4),
            from: get_u64(body, 12),
        }),
        T_PROMOTE if body.len() == 12 => Ok(Request::Promote {
            fingerprint: u32::from_le_bytes([body[0], body[1], body[2], body[3]]),
            min_epoch: get_u64(body, 4),
        }),
        _ => Err(invalid(format!("malformed request (type 0x{tag:02X})"))),
    }
}

/// Encodes a response into a payload (type byte + body).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Pong => buf.push(T_PONG),
        Response::Prediction(b) => {
            buf.push(T_PREDICTION);
            buf.extend_from_slice(&b.bits().to_le_bytes());
        }
        Response::PredictionBatch(bitmaps) => {
            buf.push(T_PREDICTION_BATCH);
            buf.extend_from_slice(&(bitmaps.len().min(MAX_BATCH) as u16).to_le_bytes());
            for b in bitmaps.iter().take(MAX_BATCH) {
                buf.extend_from_slice(&b.bits().to_le_bytes());
            }
        }
        Response::Stats(s) => {
            buf.push(T_STATS_SNAPSHOT);
            put_str(&mut buf, &s.scheme);
            buf.push(s.nodes);
            buf.extend_from_slice(&s.shards.to_le_bytes());
            for v in [
                s.updates,
                s.scored,
                s.queries,
                s.entries,
                s.restarts,
                s.confusion.tp,
                s.confusion.fp,
                s.confusion.tn,
                s.confusion.fn_,
            ] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        Response::Metrics(text) => {
            buf.push(T_METRICS_TEXT);
            let bytes = text.as_bytes();
            buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            buf.extend_from_slice(bytes);
        }
        Response::IngestAck { head } => {
            buf.push(T_INGEST_ACK);
            buf.extend_from_slice(&head.to_le_bytes());
        }
        Response::JournalSegment(seg) => {
            buf.push(T_JOURNAL_SEGMENT);
            buf.extend_from_slice(&seg.fingerprint.to_le_bytes());
            buf.extend_from_slice(&seg.epoch.to_le_bytes());
            buf.extend_from_slice(&seg.start.to_le_bytes());
            buf.extend_from_slice(&seg.head.to_le_bytes());
            buf.extend_from_slice(&seg.lease_ms.to_le_bytes());
            let n = seg.ops.len().min(MAX_SEGMENT_OPS);
            buf.extend_from_slice(&(n as u32).to_le_bytes());
            for op in &seg.ops[..n] {
                op.encode_into(&mut buf);
            }
        }
        Response::Promoted { epoch, head } => {
            buf.push(T_PROMOTED);
            buf.extend_from_slice(&epoch.to_le_bytes());
            buf.extend_from_slice(&head.to_le_bytes());
        }
        Response::Error(msg) => {
            buf.push(T_ERROR);
            put_str(&mut buf, msg);
        }
    }
    buf
}

fn get_u64(b: &[u8], at: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(bytes)
}

/// Decodes a response payload.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on unknown types or malformed bodies.
pub fn decode_response(payload: &[u8]) -> io::Result<Response> {
    let (&tag, body) = payload
        .split_first()
        .ok_or_else(|| invalid("empty payload"))?;
    match tag {
        T_PONG if body.is_empty() => Ok(Response::Pong),
        T_PREDICTION if body.len() == 8 => Ok(Response::Prediction(SharingBitmap::from_bits(
            get_u64(body, 0),
        ))),
        T_PREDICTION_BATCH => {
            if body.len() < 2 {
                return Err(invalid("truncated batch header"));
            }
            let n = u16::from_le_bytes([body[0], body[1]]) as usize;
            let rest = &body[2..];
            if rest.len() != n * 8 {
                return Err(invalid("batch body length mismatch"));
            }
            Ok(Response::PredictionBatch(
                (0..n)
                    .map(|i| SharingBitmap::from_bits(get_u64(rest, i * 8)))
                    .collect(),
            ))
        }
        T_STATS_SNAPSHOT => {
            let (scheme, used) = get_str(body)?;
            let rest = &body[used..];
            if rest.len() != 1 + 2 + 9 * 8 {
                return Err(invalid("stats body length mismatch"));
            }
            let fixed = &rest[3..];
            Ok(Response::Stats(StatsReply {
                scheme,
                nodes: rest[0],
                shards: u16::from_le_bytes([rest[1], rest[2]]),
                updates: get_u64(fixed, 0),
                scored: get_u64(fixed, 8),
                queries: get_u64(fixed, 16),
                entries: get_u64(fixed, 24),
                restarts: get_u64(fixed, 32),
                confusion: ConfusionMatrix {
                    tp: get_u64(fixed, 40),
                    fp: get_u64(fixed, 48),
                    tn: get_u64(fixed, 56),
                    fn_: get_u64(fixed, 64),
                },
            }))
        }
        T_METRICS_TEXT => {
            if body.len() < 4 {
                return Err(invalid("truncated metrics header"));
            }
            let len = u32::from_le_bytes([body[0], body[1], body[2], body[3]]) as usize;
            if body.len() != 4 + len {
                return Err(invalid("metrics body length mismatch"));
            }
            let text = std::str::from_utf8(&body[4..])
                .map_err(|_| invalid("metrics text is not UTF-8"))?
                .to_string();
            Ok(Response::Metrics(text))
        }
        T_INGEST_ACK if body.len() == 8 => Ok(Response::IngestAck {
            head: get_u64(body, 0),
        }),
        T_JOURNAL_SEGMENT => {
            if body.len() < 36 {
                return Err(invalid("truncated journal segment header"));
            }
            let fingerprint = u32::from_le_bytes([body[0], body[1], body[2], body[3]]);
            let epoch = get_u64(body, 4);
            let start = get_u64(body, 12);
            let head = get_u64(body, 20);
            let lease_ms = u32::from_le_bytes([body[28], body[29], body[30], body[31]]);
            let count = u32::from_le_bytes([body[32], body[33], body[34], body[35]]);
            let ops = decode_ops(count, &body[36..])?;
            Ok(Response::JournalSegment(SegmentFrame {
                fingerprint,
                epoch,
                start,
                head,
                lease_ms,
                ops,
            }))
        }
        T_PROMOTED if body.len() == 16 => Ok(Response::Promoted {
            epoch: get_u64(body, 0),
            head: get_u64(body, 8),
        }),
        T_ERROR => {
            let (msg, used) = get_str(body)?;
            if used != body.len() {
                return Err(invalid("trailing bytes after error message"));
            }
            Ok(Response::Error(msg))
        }
        _ => Err(invalid(format!("malformed response (type 0x{tag:02X})"))),
    }
}

/// Writes one frame: `len` prefix, payload, CRC32c of the payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_PAYLOAD`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_PAYLOAD {
        return Err(invalid(format!(
            "payload of {} bytes exceeds the {MAX_PAYLOAD}-byte frame limit",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&crc32c::checksum(payload).to_le_bytes())?;
    Ok(())
}

/// Outcome of reading one frame, with enough structure for a server to
/// decide whether the connection's *framing* is still trustworthy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A checksum-verified payload.
    Frame(Vec<u8>),
    /// The frame arrived whole but its payload fails the CRC. Framing is
    /// intact (length and trailer were consumed), so the connection can
    /// continue after reporting the error.
    BadChecksum {
        /// CRC the peer sent.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The length prefix claims more than [`MAX_PAYLOAD`]. Nothing past
    /// the prefix was read, and it cannot be skipped safely — the
    /// connection's framing is lost.
    Oversized {
        /// The hostile claimed length.
        len: u32,
    },
}

/// Reads the remainder of a frame whose first length byte was already
/// consumed (servers read that byte separately so an *idle* wait can be
/// told apart from a *mid-frame* stall when read deadlines fire).
///
/// Never allocates more than [`MAX_PAYLOAD`].
///
/// # Errors
///
/// Only transport errors ([`io::ErrorKind::UnexpectedEof`] on mid-frame
/// EOF, timeouts, resets); protocol-level problems come back as
/// [`FrameRead`] variants.
pub fn read_frame_after_first<R: Read>(r: &mut R, first: u8) -> io::Result<FrameRead> {
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest)?;
    let len = u32::from_le_bytes([first, rest[0], rest[1], rest[2]]);
    if len as usize > MAX_PAYLOAD {
        return Ok(FrameRead::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut crc_bytes = [0u8; 4];
    r.read_exact(&mut crc_bytes)?;
    let stored = u32::from_le_bytes(crc_bytes);
    let computed = crc32c::checksum(&payload);
    if stored != computed {
        return Ok(FrameRead::BadChecksum { stored, computed });
    }
    Ok(FrameRead::Frame(payload))
}

/// Reads one frame and verifies its checksum, returning the payload.
/// Returns `Ok(None)` on a clean EOF at a frame boundary.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on oversized frames or checksum
/// mismatch; [`io::ErrorKind::UnexpectedEof`] on mid-frame EOF.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    match r.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    match read_frame_after_first(r, first[0])? {
        FrameRead::Frame(payload) => Ok(Some(payload)),
        FrameRead::Oversized { len } => Err(invalid(format!(
            "frame length {len} exceeds the {MAX_PAYLOAD}-byte limit"
        ))),
        FrameRead::BadChecksum { stored, computed } => Err(invalid(format!(
            "frame checksum mismatch: stored {stored:#010X}, computed {computed:#010X}"
        ))),
    }
}

/// Writes one request frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    write_frame(w, &encode_request(req))
}

/// Reads one request frame.
///
/// # Errors
///
/// As [`read_frame`] plus [`decode_request`]; EOF at a frame boundary is
/// [`io::ErrorKind::UnexpectedEof`] here (a request was expected).
pub fn read_request<R: Read>(r: &mut R) -> io::Result<Request> {
    match read_frame(r)? {
        Some(payload) => decode_request(&payload),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request",
        )),
    }
}

/// Writes one response frame.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(resp))
}

/// Reads one response frame.
///
/// # Errors
///
/// As [`read_frame`] plus [`decode_response`].
pub fn read_response<R: Read>(r: &mut R) -> io::Result<Response> {
    match read_frame(r)? {
        Some(payload) => decode_response(&payload),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(seed: u64) -> Probe {
        Probe::new(
            NodeId((seed % 16) as u8),
            Pc((seed * 7) as u32),
            NodeId(((seed + 3) % 16) as u8),
            LineAddr(seed * 1_000_003),
        )
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Ping,
            Request::Predict(probe(1)),
            Request::PredictBatch((0..100).map(probe).collect()),
            Request::PredictBatch(Vec::new()),
            Request::Stats,
            Request::Metrics,
            Request::Ingest {
                fingerprint: 0xFACE_FEED,
                epoch: 3,
                ops: (0..50)
                    .map(|i| {
                        if i % 2 == 0 {
                            ReplOp::Update {
                                key: i * 31,
                                feedback: SharingBitmap::from_bits(i),
                            }
                        } else {
                            ReplOp::Score {
                                key: i * 37,
                                actual: SharingBitmap::from_bits(!i),
                            }
                        }
                    })
                    .collect(),
            },
            Request::Ingest {
                fingerprint: 0,
                epoch: 0,
                ops: Vec::new(),
            },
            Request::Subscribe {
                fingerprint: 0x1234_5678,
                epoch: u64::MAX,
                from: u64::MAX - 1,
            },
            Request::Promote {
                fingerprint: 0xCAFE_D00D,
                min_epoch: 42,
            },
            Request::Promote {
                fingerprint: 0,
                min_epoch: u64::MAX,
            },
        ];
        for req in reqs {
            let mut buf = Vec::new();
            write_request(&mut buf, &req).unwrap();
            assert_eq!(read_request(&mut buf.as_slice()).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Pong,
            Response::Prediction(SharingBitmap::from_bits(0xDEAD_BEEF)),
            Response::PredictionBatch((0..64).map(|i| SharingBitmap::from_bits(1 << i)).collect()),
            Response::Stats(StatsReply {
                scheme: "inter(pid+pc8)2[direct]".to_string(),
                nodes: 16,
                shards: 8,
                updates: 1,
                scored: 2,
                queries: 3,
                entries: 4,
                restarts: 5,
                confusion: ConfusionMatrix {
                    tp: 10,
                    fp: 20,
                    tn: 30,
                    fn_: 40,
                },
            }),
            Response::Metrics(String::new()),
            Response::Metrics(
                "# HELP csp_shard_queries_total Serving probes answered.\n\
                 # TYPE csp_shard_queries_total counter\n\
                 csp_shard_queries_total{shard=\"0\"} 123\n"
                    // Past 64 KiB: metrics bodies use a u32 length where
                    // other frames' strings stop at u16.
                    .repeat(600),
            ),
            Response::IngestAck { head: 0xDEAD_0001 },
            Response::JournalSegment(SegmentFrame {
                fingerprint: 0xAB,
                epoch: 2,
                start: 100,
                head: 103,
                lease_ms: 10_000,
                ops: vec![
                    ReplOp::Update {
                        key: 1,
                        feedback: SharingBitmap::from_bits(3),
                    },
                    ReplOp::Score {
                        key: 2,
                        actual: SharingBitmap::from_bits(5),
                    },
                    ReplOp::Score {
                        key: 3,
                        actual: SharingBitmap::from_bits(0),
                    },
                ],
            }),
            // A heartbeat: empty segment, start == head.
            Response::JournalSegment(SegmentFrame {
                fingerprint: 0xAB,
                epoch: u64::MAX,
                start: 103,
                head: 103,
                lease_ms: 0,
                ops: Vec::new(),
            }),
            Response::Promoted {
                epoch: 7,
                head: 0xFFFF_FFFF_0000_0001,
            },
            Response::Error("predictor on fire".to_string()),
        ];
        for resp in resps {
            let mut buf = Vec::new();
            write_response(&mut buf, &resp).unwrap();
            assert_eq!(read_response(&mut buf.as_slice()).unwrap(), resp);
        }
    }

    #[test]
    fn corrupted_frame_is_rejected_by_checksum() {
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Predict(probe(9))).unwrap();
        // Flip a payload bit: length still matches, CRC must not.
        buf[6] ^= 0x40;
        let err = read_request(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("limit"), "got: {err}");
    }

    #[test]
    fn eof_at_frame_boundary_is_none_mid_frame_is_error() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        let mut buf = Vec::new();
        write_request(&mut buf, &Request::Ping).unwrap();
        buf.truncate(buf.len() - 2); // cut into the CRC
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_types_are_invalid_data() {
        assert!(decode_request(&[0x7E]).is_err());
        assert!(decode_response(&[0x00]).is_err());
        assert!(decode_request(&[]).is_err());
        // Wrong body length for a known type.
        assert!(decode_request(&[T_PREDICT, 1, 2, 3]).is_err());
    }

    #[test]
    fn hostile_ingest_counts_are_rejected_without_allocating() {
        // count = u32::MAX with a tiny body: the count/length cross-check
        // must fire before any allocation sized by the count.
        let mut payload = vec![T_INGEST];
        payload.extend_from_slice(&7u32.to_le_bytes()); // fingerprint
        payload.extend_from_slice(&1u64.to_le_bytes()); // epoch
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // hostile count
        payload.extend_from_slice(&[0u8; 17]); // one op's worth of bytes
        assert!(decode_request(&payload).is_err());
        // Same for the segment frame.
        let mut payload = vec![T_JOURNAL_SEGMENT];
        payload.extend_from_slice(&7u32.to_le_bytes()); // fingerprint
        payload.extend_from_slice(&1u64.to_le_bytes()); // epoch
        payload.extend_from_slice(&0u64.to_le_bytes()); // start
        payload.extend_from_slice(&1u64.to_le_bytes()); // head
        payload.extend_from_slice(&0u32.to_le_bytes()); // lease_ms
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 17]);
        assert!(decode_response(&payload).is_err());
    }
}
