//! `csp-served` — host, drive and verify the online prediction service.
//!
//! ```text
//! csp-served serve  --scheme S [--nodes N] [--shards K] [--listen ADDR]
//!                   [--unix PATH] [--warm trace.csptrc]... [--stats-every SECS]
//! csp-served bench  [--scheme S] [--nodes N] [--shards K] [--batch B]
//!                   [--frames F] [--addr ADDR] [--warm trace.csptrc]
//! csp-served replay --scheme S [--shards K] <trace.csptrc>...
//! ```
//!
//! `serve` hosts an engine on TCP (and optionally a Unix socket) and logs
//! live screening statistics. `bench` measures queries/sec and frame
//! latency percentiles — against `--addr`, or against a self-hosted
//! loopback server when no address is given. `replay` replays recorded
//! traces through the sharded engine and *verifies* the online screening
//! statistics are bit-identical to the offline engine's (exit code 2 on
//! divergence).

use csp_core::engine::run_scheme;
use csp_core::Scheme;
use csp_serve::{run_load, LoadOptions, Server, ShardedEngine};
use csp_trace::{io as trace_io, Trace};
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            print_usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  csp-served serve  --scheme S [--nodes N] [--shards K] [--listen ADDR]");
    eprintln!("                    [--unix PATH] [--warm trace.csptrc]... [--stats-every SECS]");
    eprintln!("  csp-served bench  [--scheme S] [--nodes N] [--shards K] [--batch B]");
    eprintln!("                    [--frames F] [--addr ADDR] [--warm trace.csptrc]");
    eprintln!("  csp-served replay --scheme S [--shards K] <trace.csptrc>...");
}

fn load_trace(path: &str) -> Result<Trace, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    trace_io::read_trace(BufReader::new(file)).map_err(|e| format!("read {path}: {e}"))
}

fn parse_scheme(spec: &str) -> Result<Scheme, String> {
    spec.parse().map_err(|e| format!("{spec}: {e}"))
}

/// Options shared by the subcommands, parsed from `--flag value` pairs;
/// anything unflagged lands in `positional`.
struct Options {
    scheme: Option<String>,
    nodes: usize,
    shards: usize,
    listen: String,
    unix: Option<String>,
    addr: Option<String>,
    warm: Vec<String>,
    batch: usize,
    frames: usize,
    stats_every: u64,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        scheme: None,
        nodes: 16,
        shards: 4,
        listen: "127.0.0.1:7117".to_string(),
        unix: None,
        addr: None,
        warm: Vec::new(),
        batch: 1024,
        frames: 2000,
        stats_every: 10,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--scheme" => o.scheme = Some(value("--scheme")?),
            "--nodes" => {
                o.nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| "--nodes needs an integer")?
            }
            "--shards" => {
                o.shards = value("--shards")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or("--shards needs a positive integer")?
            }
            "--listen" => o.listen = value("--listen")?,
            "--unix" => o.unix = Some(value("--unix")?),
            "--addr" => o.addr = Some(value("--addr")?),
            "--warm" => {
                let path = value("--warm")?;
                o.warm.push(path);
            }
            "--batch" => {
                o.batch = value("--batch")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or("--batch needs a positive integer")?
            }
            "--frames" => {
                o.frames = value("--frames")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or("--frames needs a positive integer")?
            }
            "--stats-every" => {
                o.stats_every = value("--stats-every")?
                    .parse()
                    .map_err(|_| "--stats-every needs a number of seconds")?
            }
            other => o.positional.push(other.to_string()),
        }
    }
    Ok(o)
}

fn build_engine(o: &Options, default_scheme: &str) -> Result<Arc<ShardedEngine>, String> {
    let scheme = parse_scheme(o.scheme.as_deref().unwrap_or(default_scheme))?;
    let engine = Arc::new(ShardedEngine::new(scheme, o.nodes, o.shards));
    for path in &o.warm {
        let trace = load_trace(path)?;
        if trace.nodes() != o.nodes {
            return Err(format!(
                "{path}: trace has {} nodes, engine has {}",
                trace.nodes(),
                o.nodes
            ));
        }
        engine.replay_trace(&trace);
        eprintln!("warmed from {path}: {} events", trace.len());
    }
    Ok(engine)
}

fn log_stats(engine: &ShardedEngine) {
    let s = engine.stats();
    let scr = s.screening();
    eprintln!(
        "[stats] queries={} updates={} scored={} entries={} pvp={:.3} sens={:.3}",
        s.queries, s.updates, s.scored, s.entries, scr.pvp, scr.sensitivity
    );
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let o = parse_options(args)?;
    if o.scheme.is_none() {
        return Err("serve needs --scheme (e.g. --scheme 'inter(pid+pc8)2[direct]')".into());
    }
    let engine = build_engine(&o, "")?;

    if let Some(path) = &o.unix {
        let _ = std::fs::remove_file(path);
        let server = Server::bind_unix(path, Arc::clone(&engine))
            .map_err(|e| format!("bind {path}: {e}"))?;
        eprintln!("listening on unix socket {path}");
        std::thread::spawn(move || server.run());
    }
    let server = Server::bind_tcp(&o.listen, Arc::clone(&engine))
        .map_err(|e| format!("bind {}: {e}", o.listen))?;
    eprintln!(
        "serving {} on {} ({} shards, {} nodes)",
        engine.scheme(),
        server.local_addr().map_err(|e| e.to_string())?,
        engine.shard_count(),
        engine.nodes()
    );

    if o.stats_every > 0 {
        let monitor = Arc::clone(&engine);
        let every = Duration::from_secs(o.stats_every);
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            log_stats(&monitor);
        });
    }
    server.run().map_err(|e| e.to_string())?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench(args: &[String]) -> Result<ExitCode, String> {
    let o = parse_options(args)?;
    let opts = LoadOptions {
        batch: o.batch,
        frames: o.frames,
        nodes: o.nodes,
        ..LoadOptions::default()
    };
    let report = match &o.addr {
        Some(addr) => run_load(addr.as_str(), &opts).map_err(|e| e.to_string())?,
        None => {
            // Self-hosted: spin the engine up on a loopback ephemeral port
            // so `csp-served bench` measures the full service stack.
            let engine = build_engine(&o, "last(pid+pc8)1[direct]")?;
            eprintln!(
                "self-hosted bench: {} with {} shards",
                engine.scheme(),
                engine.shard_count()
            );
            let server =
                Server::bind_tcp("127.0.0.1:0", engine).map_err(|e| format!("bind: {e}"))?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            std::thread::spawn(move || server.run());
            run_load(addr, &opts).map_err(|e| e.to_string())?
        }
    };
    println!("{report}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let o = parse_options(args)?;
    let spec = o.scheme.as_deref().ok_or("replay needs --scheme")?;
    let scheme = parse_scheme(spec)?;
    if o.positional.is_empty() {
        return Err("replay needs at least one <trace.csptrc>".into());
    }
    let mut diverged = false;
    for path in &o.positional {
        let trace = load_trace(path)?;
        let engine = ShardedEngine::new(scheme, trace.nodes(), o.shards);
        engine.replay_trace(&trace);
        let online = engine.stats().confusion;
        let offline = run_scheme(&trace, &scheme);
        let s = online.screening();
        let verdict = if online == offline {
            "= offline (bit-identical)"
        } else {
            diverged = true;
            "!= offline: DIVERGED"
        };
        println!(
            "{path}: {} events, pvp {:.3}, sens {:.3} {verdict}",
            trace.len(),
            s.pvp,
            s.sensitivity
        );
    }
    Ok(if diverged {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    })
}
