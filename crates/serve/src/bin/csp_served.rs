//! `csp-served` — host, drive and verify the online prediction service.
//!
//! ```text
//! csp-served serve    --scheme S [--nodes N] [--shards K] [--listen ADDR]
//!                     [--unix PATH] [--warm trace.csptrc]... [--warm-events N]
//!                     [--stats-every SECS] [--snapshot-dir DIR]
//!                     [--snapshot-every SECS] [--restore] [--trace-out FILE]
//!                     [--replicate] [--follow ADDR | --follow-file PATH]
//!                     [--addr-file PATH] [--replica-id N] [--auto-promote]
//!                     [--lease-ms MS]
//! csp-served bench    [--scheme S] [--nodes N] [--shards K] [--batch B]
//!                     [--frames F] [--addr ADDR] [--warm trace.csptrc]
//!                     [--json] [--metrics-out FILE] [--no-retry]
//! csp-served push     --addr ADDR --scheme S [--from-event N] [--to-event M]
//!                     [--epoch E] <trace.csptrc>
//! csp-served promote  --addr ADDR --scheme S [--nodes N] [--min-epoch E]
//! csp-served metrics  --addr ADDR
//! csp-served top      --addr ADDR [--every SECS] [--count N]
//! csp-served spans    <FILE>
//! csp-served replay   --scheme S [--shards K] [--snapshot-dir DIR]
//!                     [--snapshot-every-events N] [--restore]
//!                     [--stats-out FILE] <trace.csptrc>...
//! csp-served snapshot <DIR>
//! ```
//!
//! `serve` hosts an engine on TCP (and optionally a Unix socket), logs
//! live screening statistics, and — given `--snapshot-dir` — persists
//! durable table snapshots periodically and once more on graceful
//! shutdown (triggered by stdin closing). `--restore` resumes from the
//! newest snapshot in the directory.
//!
//! `--replicate` makes a served engine a *leader*: every mutation is
//! journaled to CRC32c-framed segment files beside the snapshots, remote
//! producers can `push` operations over the wire, and followers stream
//! the journal live. `--follow ADDR` (or `--follow-file PATH`, re-read
//! on every dial so the leader can move) makes it a read-only *follower*
//! that bootstraps from a copied snapshot (`--restore`), subscribes from
//! its seq, reconnects with backoff, and keeps serving stale-but-
//! consistent predictions while the leader is away. A follower carries
//! its own replication log, so *it* can be followed in turn (chained
//! fan-out) — and it can be promoted to leadership: `promote` does it by
//! hand over the wire, `--auto-promote` does it automatically when the
//! leader's lease lapses (rank-ordered by `--replica-id`, lowest wins).
//! Promotion bumps the fencing epoch, stops the follower loop, and
//! rewrites the shared `--follow-file` with this server's own address so
//! the remaining followers re-parent onto the new leader; the deposed
//! leader's writes are then refused with a typed `fenced` error.
//! `PROTOCOL.md` ("Replication", "Failover & epochs") specifies the
//! frames and the failure model.
//!
//! `bench` measures queries/sec and frame latency percentiles — against
//! `--addr`, or against a self-hosted loopback server when no address is
//! given — and reports any timeouts, disconnects, or connect retries the
//! run absorbed (`--no-retry` makes connect failures fatal instead).
//!
//! `push` feeds a recorded trace's operations into a replicated leader
//! over `Ingest` frames — a stand-in for a live trace producer.
//!
//! `metrics` fetches a running server's full metrics registry as
//! Prometheus-style text (the `Metrics` wire frame). `top` polls the
//! same registry and renders a refreshing per-shard table — qps, p99
//! query service time, queue depth and restarts. `spans` prints a span
//! ring dump (`serve --trace-out`) back as JSONL.
//!
//! `replay` replays recorded traces through the sharded engine and
//! *verifies* the online screening statistics are bit-identical to the
//! offline engine's. With `--snapshot-dir` it snapshots every
//! `--snapshot-every-events` events, and `--restore` resumes a replay
//! that was killed mid-trace — the recovery path `tests/crash_recovery.rs`
//! proves bit-identical.
//!
//! `snapshot` inspects the newest snapshot in a directory.
//!
//! Exit codes: `0` success, `1` runtime failure (I/O, corrupt input,
//! online/offline divergence), `2` usage error.

use csp_core::engine::run_scheme;
use csp_core::{PreparedTrace, Scheme};
use csp_serve::replication::{self, run_follower, snapshot_at_head, trace_to_ops};
use csp_serve::{
    run_load, Client, EngineState, FollowerOptions, IngestOp, JournalStore, LoadOptions,
    PromoteHook, ReplOp, ReplicaStatus, ReplicationLog, Server, ShardedEngine, ShutdownHandle,
    SnapshotStore, DEFAULT_LEASE,
};
use csp_trace::{io as trace_io, Trace};
use std::fs::File;
use std::io::{BufReader, Read as _};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Usage errors exit 2 (and print the usage text); runtime errors exit 1.
enum CliError {
    Usage(String),
    Runtime(String),
}

fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn rt(e: impl std::fmt::Display) -> CliError {
    CliError::Runtime(e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("push") => cmd_push(&args[1..]),
        Some("promote") => cmd_promote(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("spans") => cmd_spans(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        _ => {
            print_usage();
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            print_usage();
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  csp-served serve    --scheme S [--nodes N] [--shards K] [--listen ADDR]");
    eprintln!("                      [--unix PATH] [--warm trace.csptrc]... [--warm-events N]");
    eprintln!("                      [--stats-every SECS] [--snapshot-dir DIR]");
    eprintln!("                      [--snapshot-every SECS] [--restore] [--trace-out FILE]");
    eprintln!("                      [--replicate] [--follow ADDR | --follow-file PATH]");
    eprintln!("                      [--addr-file PATH] [--replica-id N] [--auto-promote]");
    eprintln!("                      [--lease-ms MS]");
    eprintln!("  csp-served bench    [--scheme S] [--nodes N] [--shards K] [--batch B]");
    eprintln!("                      [--frames F] [--addr ADDR] [--warm trace.csptrc]");
    eprintln!("                      [--json] [--metrics-out FILE] [--no-retry]");
    eprintln!("  csp-served push     --addr ADDR --scheme S [--from-event N] [--to-event M]");
    eprintln!("                      [--epoch E] <trace.csptrc>");
    eprintln!("  csp-served promote  --addr ADDR --scheme S [--nodes N] [--min-epoch E]");
    eprintln!("  csp-served metrics  --addr ADDR");
    eprintln!("  csp-served top      --addr ADDR [--every SECS] [--count N]");
    eprintln!("  csp-served spans    <FILE>");
    eprintln!("  csp-served replay   --scheme S [--shards K] [--snapshot-dir DIR]");
    eprintln!("                      [--snapshot-every-events N] [--restore]");
    eprintln!("                      [--stats-out FILE] <trace.csptrc>...");
    eprintln!("  csp-served snapshot <DIR>");
    eprintln!("exit codes: 0 ok, 1 runtime failure (incl. divergence), 2 usage");
}

fn load_trace(path: &str) -> Result<Trace, CliError> {
    let file = File::open(path).map_err(|e| rt(format!("open {path}: {e}")))?;
    trace_io::read_trace(BufReader::new(file)).map_err(|e| rt(format!("read {path}: {e}")))
}

fn parse_scheme(spec: &str) -> Result<Scheme, CliError> {
    spec.parse().map_err(|e| usage_err(format!("{spec}: {e}")))
}

/// Options shared by the subcommands, parsed from `--flag value` pairs;
/// anything unflagged lands in `positional`.
struct Options {
    scheme: Option<String>,
    nodes: usize,
    shards: usize,
    listen: String,
    unix: Option<String>,
    addr: Option<String>,
    warm: Vec<String>,
    batch: usize,
    frames: usize,
    stats_every: u64,
    snapshot_dir: Option<String>,
    snapshot_every: u64,
    snapshot_every_events: usize,
    restore: bool,
    crash_after: Option<usize>,
    stats_out: Option<String>,
    json: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    every: u64,
    count: Option<usize>,
    replicate: bool,
    follow: Option<String>,
    follow_file: Option<String>,
    addr_file: Option<String>,
    warm_events: Option<usize>,
    no_retry: bool,
    from_event: usize,
    to_event: Option<usize>,
    replica_id: u64,
    auto_promote: bool,
    lease_ms: Option<u64>,
    min_epoch: u64,
    epoch: u64,
    positional: Vec<String>,
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options {
        scheme: None,
        nodes: 16,
        shards: 4,
        listen: "127.0.0.1:7117".to_string(),
        unix: None,
        addr: None,
        warm: Vec::new(),
        batch: 1024,
        frames: 2000,
        stats_every: 10,
        snapshot_dir: None,
        snapshot_every: 30,
        snapshot_every_events: 100_000,
        restore: false,
        crash_after: None,
        stats_out: None,
        json: false,
        metrics_out: None,
        trace_out: None,
        every: 2,
        count: None,
        replicate: false,
        follow: None,
        follow_file: None,
        addr_file: None,
        warm_events: None,
        no_retry: false,
        from_event: 0,
        to_event: None,
        replica_id: 0,
        auto_promote: false,
        lease_ms: None,
        min_epoch: 0,
        epoch: 0,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| usage_err(format!("{name} needs a value")))
        };
        match a.as_str() {
            "--scheme" => o.scheme = Some(value("--scheme")?),
            "--nodes" => {
                o.nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| usage_err("--nodes needs an integer"))?
            }
            "--shards" => {
                o.shards = value("--shards")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or_else(|| usage_err("--shards needs a positive integer"))?
            }
            "--listen" => o.listen = value("--listen")?,
            "--unix" => o.unix = Some(value("--unix")?),
            "--addr" => o.addr = Some(value("--addr")?),
            "--warm" => {
                let path = value("--warm")?;
                o.warm.push(path);
            }
            "--batch" => {
                o.batch = value("--batch")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or_else(|| usage_err("--batch needs a positive integer"))?
            }
            "--frames" => {
                o.frames = value("--frames")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or_else(|| usage_err("--frames needs a positive integer"))?
            }
            "--stats-every" => {
                o.stats_every = value("--stats-every")?
                    .parse()
                    .map_err(|_| usage_err("--stats-every needs a number of seconds"))?
            }
            "--snapshot-dir" => o.snapshot_dir = Some(value("--snapshot-dir")?),
            "--snapshot-every" => {
                o.snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|_| usage_err("--snapshot-every needs a number of seconds"))?
            }
            "--snapshot-every-events" => {
                o.snapshot_every_events = value("--snapshot-every-events")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or_else(|| usage_err("--snapshot-every-events needs a positive integer"))?
            }
            "--restore" => o.restore = true,
            "--crash-after" => {
                // Test hook: simulate a hard kill (SIGKILL-style abort)
                // once this many events have been replayed.
                o.crash_after = Some(
                    value("--crash-after")?
                        .parse()
                        .map_err(|_| usage_err("--crash-after needs an event count"))?,
                )
            }
            "--stats-out" => o.stats_out = Some(value("--stats-out")?),
            "--json" => o.json = true,
            "--metrics-out" => o.metrics_out = Some(value("--metrics-out")?),
            "--trace-out" => o.trace_out = Some(value("--trace-out")?),
            "--every" => {
                o.every = value("--every")?
                    .parse::<u64>()
                    .ok()
                    .filter(|&v| v > 0)
                    .ok_or_else(|| usage_err("--every needs a positive number of seconds"))?
            }
            "--count" => {
                o.count = Some(
                    value("--count")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| usage_err("--count needs a positive integer"))?,
                )
            }
            "--replicate" => o.replicate = true,
            "--follow" => o.follow = Some(value("--follow")?),
            "--follow-file" => o.follow_file = Some(value("--follow-file")?),
            "--addr-file" => o.addr_file = Some(value("--addr-file")?),
            "--warm-events" => {
                o.warm_events = Some(
                    value("--warm-events")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| usage_err("--warm-events needs a positive integer"))?,
                )
            }
            "--no-retry" => o.no_retry = true,
            "--replica-id" => {
                o.replica_id = value("--replica-id")?
                    .parse()
                    .map_err(|_| usage_err("--replica-id needs an integer rank"))?
            }
            "--auto-promote" => o.auto_promote = true,
            "--lease-ms" => {
                o.lease_ms = Some(
                    value("--lease-ms")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&v| v > 0)
                        .ok_or_else(|| {
                            usage_err("--lease-ms needs a positive millisecond count")
                        })?,
                )
            }
            "--min-epoch" => {
                o.min_epoch = value("--min-epoch")?
                    .parse()
                    .map_err(|_| usage_err("--min-epoch needs an epoch number"))?
            }
            "--epoch" => {
                o.epoch = value("--epoch")?
                    .parse()
                    .map_err(|_| usage_err("--epoch needs an epoch number"))?
            }
            "--from-event" => {
                o.from_event = value("--from-event")?
                    .parse()
                    .map_err(|_| usage_err("--from-event needs an event index"))?
            }
            "--to-event" => {
                o.to_event = Some(
                    value("--to-event")?
                        .parse()
                        .map_err(|_| usage_err("--to-event needs an event index"))?,
                )
            }
            other => o.positional.push(other.to_string()),
        }
    }
    Ok(o)
}

fn build_engine(o: &Options, default_scheme: &str) -> Result<Arc<ShardedEngine>, CliError> {
    let scheme = parse_scheme(o.scheme.as_deref().unwrap_or(default_scheme))?;
    let engine = Arc::new(ShardedEngine::new(scheme, o.nodes, o.shards));
    warm_engine(&engine, o)?;
    Ok(engine)
}

fn warm_engine(engine: &ShardedEngine, o: &Options) -> Result<(), CliError> {
    for path in &o.warm {
        let trace = load_trace(path)?;
        let end = o.warm_events.unwrap_or(trace.len()).min(trace.len());
        if end == trace.len() {
            engine.replay_trace(&trace).map_err(rt)?;
        } else {
            // A prefix warm (--warm-events): e.g. a leader warmed half a
            // trace whose other half arrives later over `push`.
            let prepared = PreparedTrace::new(&trace);
            engine.replay_range(&prepared, 0..end).map_err(rt)?;
        }
        eprintln!("warmed from {path}: {end} events");
    }
    Ok(())
}

fn log_stats(engine: &ShardedEngine) {
    let s = engine.stats();
    let scr = s.screening();
    eprintln!(
        "[stats] queries={} updates={} scored={} entries={} restarts={} pvp={:.3} sens={:.3}",
        s.queries,
        s.updates,
        s.scored,
        s.entries,
        s.total_restarts(),
        scr.pvp,
        scr.sensitivity
    );
}

fn save_snapshot(store: &SnapshotStore, engine: &ShardedEngine, seq: u64) -> Result<(), CliError> {
    let path = store.save(&EngineState::capture(engine, seq)).map_err(rt)?;
    eprintln!("snapshot seq {seq} -> {}", path.display());
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    if o.scheme.is_none() {
        return Err(usage_err(
            "serve needs --scheme (e.g. --scheme 'inter(pid+pc8)2[direct]')",
        ));
    }
    if o.restore && o.snapshot_dir.is_none() {
        return Err(usage_err("--restore needs --snapshot-dir"));
    }
    let following = o.follow.is_some() || o.follow_file.is_some();
    if o.follow.is_some() && o.follow_file.is_some() {
        return Err(usage_err(
            "--follow and --follow-file are mutually exclusive",
        ));
    }
    if o.replicate && following {
        return Err(usage_err(
            "--replicate (leader) and --follow (follower) are mutually exclusive",
        ));
    }
    if o.replicate && o.snapshot_dir.is_none() {
        return Err(usage_err(
            "--replicate needs --snapshot-dir (the journal lives beside the snapshots)",
        ));
    }
    if o.auto_promote && !following {
        return Err(usage_err(
            "--auto-promote needs --follow or --follow-file (only a follower promotes itself)",
        ));
    }
    if following && !o.warm.is_empty() {
        return Err(usage_err(
            "--warm cannot be combined with --follow: a follower's state must come \
             from the leader (snapshot + stream), or the replica diverges",
        ));
    }
    let store = match &o.snapshot_dir {
        Some(dir) => Some(SnapshotStore::open(dir).map_err(rt)?),
        None => None,
    };

    // Restore from the newest snapshot, or start fresh. Warm-up happens
    // below, once the replication log (if any) is attached, so warm
    // replay is journaled and reaches followers.
    let seq = Arc::new(AtomicU64::new(0));
    let mut restored = false;
    let engine = match (&store, o.restore) {
        (Some(store), true) => match store.load_latest().map_err(rt)? {
            Some((state, path)) => {
                let want = parse_scheme(o.scheme.as_deref().unwrap_or(""))?;
                if state.scheme.to_string() != want.to_string() || state.nodes != o.nodes {
                    return Err(rt(format!(
                        "{}: snapshot is {} over {} nodes; asked to serve {} over {}",
                        path.display(),
                        state.scheme,
                        state.nodes,
                        want,
                        o.nodes
                    )));
                }
                seq.store(state.seq, Ordering::Relaxed);
                restored = true;
                eprintln!(
                    "restored {} (seq {}) from {}",
                    state.scheme,
                    state.seq,
                    path.display()
                );
                // Warm traces are part of *fresh* bring-up; a restored
                // engine already contains everything it had learned.
                if !o.warm.is_empty() {
                    eprintln!("--warm skipped: state came from the snapshot");
                }
                Arc::new(state.restore().map_err(rt)?)
            }
            None => {
                eprintln!("no snapshot found; starting fresh");
                let scheme = parse_scheme(o.scheme.as_deref().unwrap_or(""))?;
                Arc::new(ShardedEngine::new(scheme, o.nodes, o.shards))
            }
        },
        _ => {
            let scheme = parse_scheme(o.scheme.as_deref().unwrap_or(""))?;
            Arc::new(ShardedEngine::new(scheme, o.nodes, o.shards))
        }
    };

    // Leader bring-up: recover the journal, re-apply anything past the
    // snapshot, attach the log, warm (now journaled), and cut a
    // bootstrap snapshot for followers.
    let mut initial_floor = 0u64;
    if o.replicate {
        let dir = o
            .snapshot_dir
            .clone()
            .ok_or_else(|| usage_err("--replicate needs --snapshot-dir"))?;
        let fp = replication::fingerprint(engine.scheme(), engine.nodes());
        let jstore = JournalStore::open(&dir, fp).map_err(rt)?;
        let recovered = jstore.recover_all().map_err(rt)?;
        let snap_seq = seq.load(Ordering::Relaxed);
        if snap_seq > recovered.head() {
            return Err(rt(format!(
                "snapshot seq {snap_seq} is ahead of the journal head {} — \
                 the journal in {dir} is not this snapshot's history",
                recovered.head()
            )));
        }
        if !restored && recovered.base > 0 {
            return Err(rt(format!(
                "journal in {dir} starts at offset {} (older segments were compacted); \
                 pass --restore to bootstrap from the snapshot",
                recovered.base
            )));
        }
        let tail = recovered.tail_from(snap_seq);
        if !tail.is_empty() {
            // Applied before the log attaches, so recovery replay is not
            // journaled a second time.
            let ops: Vec<IngestOp> = tail.iter().map(ReplOp::to_ingest).collect();
            engine.ingest_ops(ops);
            engine.flush();
            eprintln!(
                "re-applied {} journaled ops beyond snapshot seq {snap_seq}",
                tail.len()
            );
        }
        let log = ReplicationLog::durable(jstore, &recovered).map_err(rt)?;
        if let Some(ms) = o.lease_ms {
            log.set_lease_ttl(Duration::from_millis(ms));
        }
        log.bind_metrics(engine.registry());
        engine.attach_replication(log).map_err(rt)?;
        if !restored {
            warm_engine(&engine, &o)?;
        }
        if let Some(store) = &store {
            let state = snapshot_at_head(&engine).map_err(rt)?;
            initial_floor = state.seq;
            seq.store(state.seq, Ordering::Relaxed);
            let path = store.save(&state).map_err(rt)?;
            eprintln!("snapshot seq {} -> {}", state.seq, path.display());
        }
        eprintln!(
            "replicating as leader: fingerprint {fp:#010X}, journal head {}",
            engine.replication().map_or(0, |l| l.head())
        );
    } else if !restored && !following {
        warm_engine(&engine, &o)?;
    }

    // Follower bring-up: read-only engine bootstrapped from the copied
    // snapshot plus whatever its *local* journal already holds. The
    // follower carries its own replication log — the relay point for
    // chained fan-out, and the durable record a promotion re-opens as
    // leader — so segments it applies are journaled (when durable) and
    // republished to its own subscribers. The streaming thread starts
    // once the server socket is up.
    let mut follower_setup: Option<Arc<ReplicaStatus>> = None;
    if following {
        engine.mark_follower();
        let fp = replication::fingerprint(engine.scheme(), engine.nodes());
        let snap_seq = seq.load(Ordering::Relaxed);
        let log = match &o.snapshot_dir {
            Some(dir) => {
                let js = JournalStore::open(dir, fp).map_err(rt)?;
                let mut recovered = js.recover_all().map_err(rt)?;
                let head = recovered.head();
                if head > 0 && head < snap_seq {
                    return Err(rt(format!(
                        "local journal ends at {head}, before snapshot seq {snap_seq}; \
                         remove stale journal-*.cspjrnl files from {dir} before following"
                    )));
                }
                let tail = recovered.tail_from(snap_seq);
                if !tail.is_empty() {
                    let ops: Vec<IngestOp> = tail.iter().map(ReplOp::to_ingest).collect();
                    engine.ingest_ops(ops);
                    engine.flush();
                    eprintln!(
                        "re-applied {} locally journaled ops beyond snapshot seq {snap_seq}",
                        tail.len()
                    );
                }
                if head == 0 && snap_seq > 0 {
                    // Empty journal under a bootstrapped snapshot: the
                    // durable log resumes at the snapshot horizon.
                    recovered.base = snap_seq;
                }
                ReplicationLog::durable(js, &recovered).map_err(rt)?
            }
            // Journal-less follower: an in-memory log still relays the
            // stream downstream, but promotion yields a leader whose
            // history starts at its in-memory base.
            None => ReplicationLog::in_memory_at(fp, snap_seq, 1),
        };
        if let Some(ms) = o.lease_ms {
            log.set_lease_ttl(Duration::from_millis(ms));
        }
        let start = log.head();
        log.bind_metrics(engine.registry());
        engine.attach_replication(log).map_err(rt)?;
        let status = ReplicaStatus::new(start);
        status.bind_metrics(engine.registry());
        eprintln!(
            "following {} from offset {start} (read-only replica)",
            o.follow
                .as_deref()
                .or(o.follow_file.as_deref())
                .unwrap_or("?")
        );
        follower_setup = Some(status);
    }

    // Expose snapshot lifecycle counters through the engine's registry so
    // they ride along in `Metrics` replies and `csp-served top`.
    if let Some(store) = &store {
        store.bind_metrics(engine.registry());
    }
    if let Some(path) = &o.trace_out {
        csp_obs::global_ring().set_enabled(true);
        eprintln!("span tracing on; ring dumps to {path} at shutdown");
    }

    let server = Server::bind_tcp(&o.listen, Arc::clone(&engine))
        .map_err(|e| rt(format!("bind {}: {e}", o.listen)))?;
    let bound = server.local_addr().map_err(rt)?;

    // Promotion: one routine shared by the wire `Promote` hook (which
    // also serves the `promote` subcommand) and the auto-promote
    // monitor. Fence first (durable epoch bump), then stop the follower
    // loop, flip the engine writable, and re-parent the fleet by
    // rewriting the shared --follow-file with this server's address —
    // every other follower re-reads it on its next dial.
    let follower_shutdown = ShutdownHandle::new();
    let mut promoter: Option<PromoteHook> = None;
    if following {
        let p_engine = Arc::clone(&engine);
        let p_stop = follower_shutdown.clone();
        let follow_file = o.follow_file.clone();
        let own_addr = bound.to_string();
        promoter = Some(Arc::new(move |min_epoch: u64| {
            let log = p_engine
                .replication()
                .ok_or_else(|| "no replication log attached".to_string())?;
            let epoch = log.bump_epoch(min_epoch).map_err(|e| e.to_string())?;
            p_stop.shutdown();
            p_engine.mark_leader();
            match &follow_file {
                Some(path) => match trace_io::write_file_atomically(
                    std::path::Path::new(path),
                    own_addr.as_bytes(),
                ) {
                    Ok(()) => eprintln!(
                        "promoted to leader (epoch {epoch}); re-parented {path} -> {own_addr}"
                    ),
                    Err(e) => eprintln!(
                        "promoted to leader (epoch {epoch}); could not re-parent {path}: {e}"
                    ),
                },
                None => eprintln!("promoted to leader (epoch {epoch})"),
            }
            Ok((epoch, log.head()))
        }));
    }
    let server = match &promoter {
        Some(hook) => server.with_promote_hook(Arc::clone(hook)),
        None => server,
    };

    let mut unix_shutdown = None;
    if let Some(path) = &o.unix {
        let _ = std::fs::remove_file(path);
        let mut unix_server = Server::bind_unix(path, Arc::clone(&engine))
            .map_err(|e| rt(format!("bind {path}: {e}")))?;
        if let Some(hook) = &promoter {
            unix_server = unix_server.with_promote_hook(Arc::clone(hook));
        }
        eprintln!("listening on unix socket {path}");
        unix_shutdown = Some(unix_server.shutdown_handle());
        std::thread::spawn(move || unix_server.run());
    }
    if let Some(path) = &o.addr_file {
        // Published atomically so a follower's --follow-file never reads
        // a half-written address.
        trace_io::write_file_atomically(std::path::Path::new(path), bound.to_string().as_bytes())
            .map_err(|e| rt(format!("write {path}: {e}")))?;
        eprintln!("wrote bound address {bound} to {path}");
    }
    eprintln!(
        "serving {} on {bound} ({} shards, {} nodes)",
        engine.scheme(),
        engine.shard_count(),
        engine.nodes()
    );

    // The follower's streaming thread: dials the leader, applies
    // segments, and retries with backoff until its *own* shutdown handle
    // fires — server shutdown triggers it, and so does promotion
    // (stopping the stream without stopping the server).
    let mut follower_thread = None;
    if let Some(status) = follower_setup.take() {
        let f_engine = Arc::clone(&engine);
        let f_status = Arc::clone(&status);
        let f_shutdown = follower_shutdown.clone();
        let follow_addr = o.follow.clone();
        let follow_file = o.follow_file.clone();
        let join = std::thread::spawn(move || {
            // Re-resolved on every dial: a --follow-file leader can
            // restart on a new port (or a promotion can re-parent the
            // fleet) and just rewrite the file.
            let leader = move || match (&follow_addr, &follow_file) {
                (Some(addr), _) => Some(addr.clone()),
                (None, Some(path)) => std::fs::read_to_string(path)
                    .ok()
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty()),
                (None, None) => None,
            };
            run_follower(
                &f_engine,
                leader,
                &f_status,
                &f_shutdown,
                &FollowerOptions::default(),
            )
        });
        follower_thread = Some((join, status));
    }

    // Lease-based failure detection: when segments (heartbeats included)
    // stop arriving for longer than the leader-advertised lease —
    // staggered by replica rank so exactly one replica moves first —
    // promote this follower. Rank 0's deadline is one lease; each higher
    // rank waits two extra leases, time enough to ride out reconnect
    // backoff and re-parent onto whoever beat it to the claim.
    if o.auto_promote {
        if let (Some(hook), Some((_, status))) = (&promoter, &follower_thread) {
            let hook = Arc::clone(hook);
            let status = Arc::clone(status);
            let stop = follower_shutdown.clone();
            let rank = o.replica_id;
            let fallback_ms = o.lease_ms.unwrap_or(DEFAULT_LEASE.as_millis() as u64);
            std::thread::spawn(move || loop {
                std::thread::sleep(Duration::from_millis(100));
                if stop.is_shutdown() {
                    // Promoted already (possibly by hand) or shutting down.
                    return;
                }
                if status.is_connected() || status.is_diverged() {
                    continue;
                }
                // A replica that never saw the stream has no standing to
                // claim leadership — it may hold arbitrarily old state.
                let Some(age) = status.last_segment_age_ms() else {
                    continue;
                };
                let lease = match status.lease_ms() {
                    0 => fallback_ms,
                    ms => ms,
                };
                let deadline = lease.saturating_mul(2 * rank + 1);
                if age <= deadline {
                    continue;
                }
                eprintln!(
                    "auto-promote: leader lease lapsed ({age}ms since last segment \
                     > {deadline}ms deadline for rank {rank})"
                );
                match hook(0) {
                    Ok((epoch, head)) => {
                        eprintln!("auto-promoted: epoch {epoch}, journal head {head}");
                    }
                    Err(e) => eprintln!("auto-promotion failed: {e}"),
                }
                return;
            });
        }
    }

    if o.stats_every > 0 {
        let monitor = Arc::clone(&engine);
        let every = Duration::from_secs(o.stats_every);
        std::thread::spawn(move || loop {
            std::thread::sleep(every);
            log_stats(&monitor);
        });
    }

    // Periodic background snapshots. A replicated leader snapshots at
    // the journal head (seq == offset, an exact cut) and compacts the
    // journal below the *previous* retained snapshot's horizon. A
    // follower skips periodic snapshots: its applied offset moves on the
    // streaming thread, so only the post-drain snapshot is an exact cut.
    if following {
        if o.snapshot_dir.is_some() && o.snapshot_every > 0 {
            eprintln!("periodic snapshots are disabled while following; one is taken at shutdown");
        }
    } else if let (Some(dir), true) = (&o.snapshot_dir, o.snapshot_every > 0) {
        let dir = dir.clone();
        let snap_engine = Arc::clone(&engine);
        let snap_seq = Arc::clone(&seq);
        let every = Duration::from_secs(o.snapshot_every);
        let mut floor = initial_floor;
        std::thread::spawn(move || {
            let Ok(store) = SnapshotStore::open(&dir) else {
                return;
            };
            loop {
                std::thread::sleep(every);
                let result = if let Some(log) = snap_engine.replication() {
                    snapshot_at_head(&snap_engine)
                        .map_err(rt)
                        .and_then(|state| {
                            let s = state.seq;
                            let path = store.save(&state).map_err(rt)?;
                            eprintln!("snapshot seq {s} -> {}", path.display());
                            snap_seq.store(s, Ordering::Relaxed);
                            if let Err(e) = log.compact(floor) {
                                eprintln!("journal compaction failed: {e}");
                            }
                            floor = s;
                            Ok(())
                        })
                } else {
                    let s = snap_seq.fetch_add(1, Ordering::Relaxed) + 1;
                    save_snapshot(&store, &snap_engine, s)
                };
                if let Err(e) = result {
                    match e {
                        CliError::Usage(msg) | CliError::Runtime(msg) => {
                            eprintln!("snapshot failed: {msg}")
                        }
                    }
                }
            }
        });
    }

    // Graceful shutdown: when stdin closes (Ctrl-D, or the supervising
    // process going away), stop accepting, drain, snapshot, exit 0.
    let shutdown = server.shutdown_handle();
    let stdin_follower_stop = follower_shutdown.clone();
    std::thread::spawn(move || {
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        eprintln!("stdin closed; shutting down");
        if let Some(h) = &unix_shutdown {
            h.shutdown();
        }
        stdin_follower_stop.shutdown();
        shutdown.shutdown();
    });

    let handle = server.shutdown_handle();
    server.run().map_err(rt)?;
    // Whatever stopped the server also stops a still-streaming follower
    // loop (a promoted one has stopped already).
    follower_shutdown.shutdown();
    // A follower finishes applying its in-flight segment before the
    // final snapshot is cut, and reports how far it got.
    if let Some((join, status)) = follower_thread {
        match join.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => eprintln!("follower stream failed: {e}"),
            Err(_) => eprintln!("follower thread panicked"),
        }
        // A promoted follower may have appended past what the stream
        // applied; the attached log's head is the authoritative offset.
        let final_offset = engine.replication().map_or(status.applied(), |l| l.head());
        handle.record_final_offset(final_offset);
        seq.store(final_offset, Ordering::Relaxed);
    }
    if let Some(store) = &store {
        let state = if engine.replication().is_some() {
            snapshot_at_head(&engine).map_err(rt)?
        } else {
            let s = if following {
                seq.load(Ordering::Relaxed)
            } else {
                seq.fetch_add(1, Ordering::Relaxed) + 1
            };
            EngineState::capture(&engine, s)
        };
        let path = store.save(&state).map_err(rt)?;
        eprintln!("snapshot seq {} -> {}", state.seq, path.display());
    }
    if let Some(offset) = handle.final_offset() {
        eprintln!("final journal offset {offset}");
    }
    if let Some(path) = &o.trace_out {
        let ring = csp_obs::global_ring();
        let spans = ring.len();
        let mut bytes = Vec::new();
        ring.dump(&mut bytes)
            .map_err(|e| rt(format!("encode span ring: {e}")))?;
        trace_io::write_file_atomically(std::path::Path::new(path), &bytes)
            .map_err(|e| rt(format!("write {path}: {e}")))?;
        eprintln!("wrote {spans} spans to {path}");
    }
    log_stats(&engine);
    Ok(ExitCode::SUCCESS)
}

fn cmd_bench(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    let opts = LoadOptions {
        batch: o.batch,
        frames: o.frames,
        nodes: o.nodes,
        retry: !o.no_retry,
        ..LoadOptions::default()
    };
    let (report, scrape_addr) = match &o.addr {
        Some(addr) => (run_load(addr.as_str(), &opts).map_err(rt)?, addr.clone()),
        None => {
            // Self-hosted: spin the engine up on a loopback ephemeral port
            // so `csp-served bench` measures the full service stack.
            let engine = build_engine(&o, "last(pid+pc8)1[direct]")?;
            eprintln!(
                "self-hosted bench: {} with {} shards",
                engine.scheme(),
                engine.shard_count()
            );
            let server =
                Server::bind_tcp("127.0.0.1:0", engine).map_err(|e| rt(format!("bind: {e}")))?;
            let addr = server.local_addr().map_err(rt)?;
            std::thread::spawn(move || server.run());
            (run_load(addr, &opts).map_err(rt)?, addr.to_string())
        }
    };
    if let Some(out) = &o.metrics_out {
        let mut client = Client::connect_tcp(scrape_addr.as_str())
            .map_err(|e| rt(format!("connect {scrape_addr}: {e}")))?;
        let text = client.metrics().map_err(rt)?;
        trace_io::write_file_atomically(std::path::Path::new(out), text.as_bytes())
            .map_err(|e| rt(format!("write {out}: {e}")))?;
        eprintln!("wrote metrics scrape to {out}");
    }
    if o.json {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `push` — replay a slice of a recorded trace into a replicated leader
/// over `Ingest` frames, as a remote trace producer would.
fn cmd_push(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    let addr = o
        .addr
        .as_deref()
        .ok_or_else(|| usage_err("push needs --addr"))?;
    let spec = o
        .scheme
        .as_deref()
        .ok_or_else(|| usage_err("push needs --scheme (the leader's scheme)"))?;
    let scheme = parse_scheme(spec)?;
    let [path] = o.positional.as_slice() else {
        return Err(usage_err("push takes exactly one <trace.csptrc>"));
    };
    let trace = load_trace(path)?;
    let prepared = PreparedTrace::new(&trace);
    let total = prepared.len();
    let from = o.from_event.min(total);
    let to = o.to_event.unwrap_or(total).min(total);
    if from > to {
        return Err(usage_err(format!(
            "--from-event {from} is past --to-event {to}"
        )));
    }
    let fp = replication::fingerprint(&scheme, trace.nodes());
    let mut client = Client::connect_tcp(addr).map_err(|e| rt(format!("connect {addr}: {e}")))?;
    client
        .set_timeouts(Some(Duration::from_secs(30)), Some(Duration::from_secs(30)))
        .map_err(rt)?;
    // Derive and send in bounded chunks so an arbitrarily long trace
    // never materializes as one giant op vector.
    const CHUNK: usize = 8192;
    let mut sent = 0usize;
    let mut head = 0u64;
    let mut pos = from;
    while pos < to {
        let end = (pos + CHUNK).min(to);
        let ops = trace_to_ops(&prepared, &scheme, pos..end);
        sent += ops.len();
        head = client.ingest_at_epoch(fp, o.epoch, &ops).map_err(rt)?;
        pos = end;
    }
    if from == to {
        // Nothing to send: still validate the fingerprint (and epoch)
        // and report the leader's head.
        head = client.ingest_at_epoch(fp, o.epoch, &[]).map_err(rt)?;
    }
    println!("pushed {sent} ops from {path} (events [{from}..{to})); leader head {head}");
    Ok(ExitCode::SUCCESS)
}

/// `promote` — make a follower the new leader, over the wire. The
/// replica bumps its fencing epoch to at least `--min-epoch` (always
/// past its current term), stops streaming, re-parents the fleet via
/// the shared address file, and starts accepting writes; the deposed
/// leader's pushes are refused as `fenced` from then on. `--scheme` and
/// `--nodes` must match the replica's (they form the fingerprint).
fn cmd_promote(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    let addr = o
        .addr
        .as_deref()
        .ok_or_else(|| usage_err("promote needs --addr"))?;
    let spec = o
        .scheme
        .as_deref()
        .ok_or_else(|| usage_err("promote needs --scheme (the replica's scheme)"))?;
    let scheme = parse_scheme(spec)?;
    let fp = replication::fingerprint(&scheme, o.nodes);
    let mut client = Client::connect_tcp(addr).map_err(|e| rt(format!("connect {addr}: {e}")))?;
    client
        .set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
        .map_err(rt)?;
    let (epoch, head) = client.promote(fp, o.min_epoch).map_err(rt)?;
    println!("promoted {addr}: epoch {epoch}, journal head {head}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    let addr = o
        .addr
        .as_deref()
        .ok_or_else(|| usage_err("metrics needs --addr"))?;
    let mut client = Client::connect_tcp(addr).map_err(|e| rt(format!("connect {addr}: {e}")))?;
    client
        .set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
        .map_err(rt)?;
    print!("{}", client.metrics().map_err(rt)?);
    Ok(ExitCode::SUCCESS)
}

/// One refresh of the `top` table, derived from two metrics scrapes.
struct TopRow {
    shard: String,
    qps: f64,
    p99_ns: u64,
    queue: i64,
    restarts: u64,
}

/// Reads the p-th quantile of a Prometheus histogram back out of its
/// cumulative `_bucket{le=...}` samples for one shard.
fn bucket_quantile(samples: &[csp_obs::Sample], name: &str, shard: &str, q: f64) -> u64 {
    let bucket_name = format!("{name}_bucket");
    let mut buckets: Vec<(u64, u64)> = samples
        .iter()
        .filter(|s| s.name == bucket_name && s.label("shard") == Some(shard))
        .filter_map(|s| {
            let le = s.label("le")?;
            let le = if le == "+Inf" {
                u64::MAX
            } else {
                le.parse().ok()?
            };
            Some((le, s.value_u64()?))
        })
        .collect();
    buckets.sort_unstable();
    let total = buckets.last().map_or(0, |&(_, cum)| cum);
    if total == 0 {
        return 0;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let target = ((total as f64) * q).ceil().max(1.0) as u64;
    buckets
        .iter()
        .find(|&&(_, cum)| cum >= target)
        .map_or(0, |&(le, _)| le)
}

fn shard_counter(samples: &[csp_obs::Sample], name: &str, shard: &str) -> u64 {
    samples
        .iter()
        .find(|s| s.name == name && s.label("shard") == Some(shard))
        .and_then(csp_obs::Sample::value_u64)
        .unwrap_or(0)
}

fn top_rows(prev: &[csp_obs::Sample], cur: &[csp_obs::Sample], secs: f64) -> Vec<TopRow> {
    let mut shards: Vec<String> = cur
        .iter()
        .filter(|s| s.name == "csp_shard_queries_total")
        .filter_map(|s| s.label("shard").map(str::to_string))
        .collect();
    shards.sort();
    shards.dedup();
    shards
        .into_iter()
        .map(|shard| {
            let now = shard_counter(cur, "csp_shard_queries_total", &shard);
            let before = shard_counter(prev, "csp_shard_queries_total", &shard);
            #[allow(clippy::cast_precision_loss)]
            let qps = now.saturating_sub(before) as f64 / secs.max(1e-9);
            let queue = cur
                .iter()
                .find(|s| s.name == "csp_shard_queue_depth" && s.label("shard") == Some(&shard))
                .and_then(csp_obs::Sample::value_i64)
                .unwrap_or(0);
            TopRow {
                qps,
                p99_ns: bucket_quantile(cur, "csp_shard_query_service_ns", &shard, 0.99),
                queue,
                restarts: shard_counter(cur, "csp_shard_restarts_total", &shard),
                shard,
            }
        })
        .collect()
}

fn render_top(rows: &[TopRow], samples: &[csp_obs::Sample]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let conns = samples
        .iter()
        .find(|s| s.name == "csp_connections_active")
        .and_then(csp_obs::Sample::value_i64)
        .unwrap_or(0);
    let queries: u64 = rows
        .iter()
        .map(|r| shard_counter(samples, "csp_shard_queries_total", &r.shard))
        .sum();
    let _ = writeln!(
        out,
        "csp-served top — {conns} conns, {queries} queries total"
    );
    // A follower exposes csp_repl_* gauges; render its health line.
    let repl = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .and_then(csp_obs::Sample::value_i64)
    };
    if let Some(applied) = repl("csp_repl_applied_offset") {
        let leader = repl("csp_repl_leader_offset").unwrap_or(applied);
        let lag = repl("csp_repl_lag_ops").unwrap_or(0);
        let connected = repl("csp_repl_connected").unwrap_or(0) == 1;
        let diverged = repl("csp_repl_diverged").unwrap_or(0) == 1;
        let reconnects = repl("csp_repl_reconnects_total").unwrap_or(0);
        let resyncs = repl("csp_repl_resyncs_total").unwrap_or(0);
        let health = if diverged {
            "DIVERGED"
        } else if connected {
            "connected"
        } else {
            "disconnected (serving stale)"
        };
        let _ = writeln!(
            out,
            "replica: applied {applied} / leader {leader} (lag {lag} ops), \
             {health}, {reconnects} reconnects, {resyncs} resyncs"
        );
    }
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>7} {:>9}",
        "shard", "qps", "p99", "queue", "restarts"
    );
    for r in rows {
        #[allow(clippy::cast_precision_loss)]
        let p99_us = r.p99_ns as f64 / 1_000.0;
        let _ = writeln!(
            out,
            "{:>6} {:>12.0} {:>10.1}us {:>7} {:>9}",
            r.shard, r.qps, p99_us, r.queue, r.restarts
        );
    }
    out
}

fn cmd_top(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    let addr = o
        .addr
        .as_deref()
        .ok_or_else(|| usage_err("top needs --addr"))?;
    let mut client = Client::connect_tcp(addr).map_err(|e| rt(format!("connect {addr}: {e}")))?;
    client
        .set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
        .map_err(rt)?;
    let every = Duration::from_secs(o.every);
    #[allow(clippy::cast_precision_loss)]
    let secs = o.every as f64;
    let mut prev = csp_obs::parse_text(&client.metrics().map_err(rt)?);
    let mut remaining = o.count;
    loop {
        std::thread::sleep(every);
        let cur = csp_obs::parse_text(&client.metrics().map_err(rt)?);
        let rows = top_rows(&prev, &cur, secs);
        // Clear the screen and home the cursor between refreshes.
        print!("\x1b[2J\x1b[H{}", render_top(&rows, &cur));
        use std::io::Write as _;
        std::io::stdout().flush().map_err(rt)?;
        prev = cur;
        if let Some(n) = &mut remaining {
            *n -= 1;
            if *n == 0 {
                break;
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_spans(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    let [path] = o.positional.as_slice() else {
        return Err(usage_err("spans takes exactly one <FILE>"));
    };
    let file = File::open(path).map_err(|e| rt(format!("open {path}: {e}")))?;
    let lines =
        csp_obs::read_dump(BufReader::new(file)).map_err(|e| rt(format!("read {path}: {e}")))?;
    for line in &lines {
        println!("{line}");
    }
    eprintln!("{} spans", lines.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, CliError> {
    let o = parse_options(args)?;
    let spec = o
        .scheme
        .as_deref()
        .ok_or_else(|| usage_err("replay needs --scheme"))?;
    let scheme = parse_scheme(spec)?;
    if o.positional.is_empty() {
        return Err(usage_err("replay needs at least one <trace.csptrc>"));
    }
    if (o.snapshot_dir.is_some() || o.restore) && o.positional.len() != 1 {
        return Err(usage_err(
            "snapshotted replay takes exactly one trace (snapshots mark a position in it)",
        ));
    }
    if o.restore && o.snapshot_dir.is_none() {
        return Err(usage_err("--restore needs --snapshot-dir"));
    }
    let store = match &o.snapshot_dir {
        Some(dir) => Some(SnapshotStore::open(dir).map_err(rt)?),
        None => None,
    };

    let mut diverged = false;
    for path in &o.positional {
        let trace = load_trace(path)?;
        let prepared = PreparedTrace::new(&trace);
        let total = prepared.len();

        // Fresh engine, or resume from the newest snapshot's position.
        let mut start = 0usize;
        let engine = match (&store, o.restore) {
            (Some(store), true) => match store.load_latest().map_err(rt)? {
                Some((state, spath)) => {
                    if state.scheme.to_string() != scheme.to_string()
                        || state.nodes != trace.nodes()
                    {
                        return Err(rt(format!(
                            "{}: snapshot is {} over {} nodes; replay wants {} over {}",
                            spath.display(),
                            state.scheme,
                            state.nodes,
                            scheme,
                            trace.nodes()
                        )));
                    }
                    if state.seq as usize > total {
                        return Err(rt(format!(
                            "{}: snapshot seq {} is past the end of {path} ({total} events)",
                            spath.display(),
                            state.seq
                        )));
                    }
                    start = state.seq as usize;
                    eprintln!("restored at event {start} from {}", spath.display());
                    state.restore().map_err(rt)?
                }
                None => ShardedEngine::new(scheme, trace.nodes(), o.shards),
            },
            _ => ShardedEngine::new(scheme, trace.nodes(), o.shards),
        };

        // Replay in snapshot-bounded chunks. Each replay_range flushes, so
        // a snapshot taken between chunks is an exact prefix cut.
        let chunk = if store.is_some() {
            o.snapshot_every_events
        } else {
            total.saturating_sub(start).max(1)
        };
        let mut pos = start;
        while pos < total {
            let end = (pos + chunk).min(total);
            engine.replay_range(&prepared, pos..end).map_err(rt)?;
            pos = end;
            if let Some(m) = o.crash_after {
                // Hard-kill simulation: die *before* persisting this
                // chunk, exactly like a power cut mid-interval. Recovery
                // must re-earn everything after the last durable snapshot.
                if pos >= m {
                    eprintln!("injected crash at event {pos}");
                    std::process::abort();
                }
            }
            if let Some(store) = &store {
                save_snapshot(store, &engine, pos as u64)?;
            }
        }

        let online = engine.stats();
        let offline = run_scheme(&trace, &scheme);
        let s = online.confusion.screening();
        let verdict = if online.confusion == offline {
            "= offline (bit-identical)"
        } else {
            diverged = true;
            "!= offline: DIVERGED"
        };
        println!(
            "{path}: {} events, pvp {:.3}, sens {:.3} {verdict}",
            trace.len(),
            s.pvp,
            s.sensitivity
        );

        if let Some(out) = &o.stats_out {
            let c = online.confusion;
            let body = format!(
                "tp {}\nfp {}\ntn {}\nfn {}\nupdates {}\nscored {}\n",
                c.tp, c.fp, c.tn, c.fn_, online.updates, online.scored
            );
            trace_io::write_file_atomically(std::path::Path::new(out), body.as_bytes())
                .map_err(|e| rt(format!("write {out}: {e}")))?;
        }
    }
    if diverged {
        Err(rt("online replay diverged from the offline reference"))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_snapshot(args: &[String]) -> Result<ExitCode, CliError> {
    let [dir] = args else {
        return Err(usage_err("snapshot takes exactly one <DIR>"));
    };
    let store = SnapshotStore::open(dir.as_str()).map_err(rt)?;
    match store.load_latest().map_err(rt)? {
        Some((state, path)) => {
            let entries: usize = state.shards.iter().map(|s| s.table.entries().count()).sum();
            let updates: u64 = state.shards.iter().map(|s| s.updates).sum();
            println!(
                "{}: {} over {} nodes, {} shards, seq {}, {} entries, {} updates",
                path.display(),
                state.scheme,
                state.nodes,
                state.shards.len(),
                state.seq,
                entries,
                updates
            );
            // A replicated deployment keeps journal-*.cspjrnl beside the
            // snapshots; report the durable offset range for resume/debug.
            let fp = replication::fingerprint(&state.scheme, state.nodes);
            match JournalStore::open(dir.as_str(), fp).and_then(|j| j.recover_all()) {
                Ok(recovered) if recovered.head() == 0 => println!("journal: none"),
                Ok(recovered) => println!(
                    "journal: ops [{}..{}) on disk (snapshot resumes at {})",
                    recovered.base,
                    recovered.head(),
                    state.seq
                ),
                Err(e) => println!("journal: unreadable ({e})"),
            }
            Ok(ExitCode::SUCCESS)
        }
        None => Err(rt(format!("no usable snapshot in {dir}"))),
    }
}
