//! An *online* sharing-prediction service over the predictors of
//! Kaxiras & Young (HPCA 2000).
//!
//! The rest of the workspace evaluates predictors offline: a recorded
//! trace goes in, a confusion matrix comes out. This crate runs the same
//! predictor tables as a long-lived service:
//!
//! * [`ShardedEngine`] — the predictor state partitioned across worker
//!   threads by index key ([`csp_core::shard_of_key`]), with bounded FIFO
//!   inboxes (backpressure), batched ingest, and no global lock. Sharding
//!   is *exact*: replaying a trace yields bit-identical screening
//!   statistics to the offline engine (see `tests/equivalence.rs`).
//! * [`ShardPool`] — the same shard workers with a persistent
//!   lifecycle: threads live across many replays and are re-tasked per
//!   session, for callers (like the `csp-bar` barometer) that replay
//!   hundreds of short cells and must not measure thread spawn.
//! * [`wire`] — a length-prefixed, CRC32c-checksummed binary protocol
//!   (the same checksum conventions as the on-disk trace format), spoken
//!   over TCP or Unix sockets by [`server`] and [`client`].
//! * live screening statistics — per-shard lock-free
//!   [`csp_metrics::OnlineConfusion`] counters, merged on demand into an
//!   [`EngineSnapshot`].
//! * crash safety — workers supervise themselves (a panicked batch is
//!   recovered from an in-memory checkpoint + journal, surfacing as
//!   [`ShardRestart`] stats), and [`snapshot`] persists the live tables
//!   as CRC32c-checksummed, atomically written files that restore to a
//!   bit-identical engine ([`ShardedEngine::with_state`]). Connections
//!   carry read/write deadlines and per-connection error budgets
//!   ([`ServerOptions`]), and [`ShutdownHandle`] drains the server
//!   gracefully so a final snapshot can be taken.
//! * [`bench`] — a load generator reporting queries/sec and p50/p99
//!   latency against a running server.
//! * [`replication`] — leader/follower replication: a totally-ordered,
//!   journal-durable operation log on the leader, snapshot-bootstrapped
//!   followers streaming `JournalSegment` frames with
//!   backoff-and-resume, and fingerprint-guarded divergence detection.
//!   Followers are bit-identical to the leader (see
//!   `tests/replication.rs`), relay segments to their own downstreams
//!   (chained fan-out), and can be *promoted* to leadership under a
//!   bumped fencing epoch — lease-based failure detection drives
//!   automatic promotion, and deposed leaders are fenced by epoch.
//!
//! The `csp-served` binary wires these together: `serve` hosts an engine,
//! `bench` drives one, `replay` proves online == offline on a trace file.
//!
//! # Example
//!
//! ```no_run
//! use csp_serve::{Client, Probe, ShardedEngine, Server};
//! use csp_trace::{LineAddr, NodeId, Pc};
//! use std::sync::Arc;
//!
//! let engine = Arc::new(ShardedEngine::new(
//!     "last(pid+pc8)1[direct]".parse().unwrap(), 16, 4));
//! let server = Server::bind_tcp("127.0.0.1:0", engine)?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect_tcp(addr)?;
//! let bitmap = client.predict(&Probe::new(NodeId(0), Pc(7), NodeId(1), LineAddr(3)))?;
//! println!("predicted readers: {bitmap:?}");
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Library code must surface failures as typed errors, not unwrap panics;
// tests opt back in where unwrapping is the assertion.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bench;
pub mod client;
pub mod error;
pub mod pool;
pub mod replication;
pub mod server;
pub mod shard;
pub mod snapshot;
pub mod wire;

pub use bench::{probe_stream, run_load, LoadOptions, LoadReport};
pub use client::Client;
pub use error::ServeError;
pub use pool::ShardPool;
pub use replication::{
    CompactStats, FollowerOptions, JournalStore, LeaseId, Recovered, ReplOp, ReplicaStatus,
    ReplicationLog, DEFAULT_LEASE, MAX_SEGMENT_OPS,
};
pub use server::{PromoteHook, Server, ServerOptions, ShutdownHandle};
pub use shard::{EngineSnapshot, IngestOp, ShardCounters, ShardRestart, ShardState, ShardedEngine};
pub use snapshot::{EngineState, SnapshotStore};

use csp_trace::{LineAddr, NodeId, Pc};

/// One prediction request: the information available at a coherence store
/// miss (Section 3.1 of the paper — `pid`, `pc`, `dir`, `addr`). The
/// engine's scheme decides which of these fields index the predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Probe {
    /// The node about to write (`pid`).
    pub writer: NodeId,
    /// The store instruction (`pc`).
    pub pc: Pc,
    /// The line's home directory (`dir`).
    pub home: NodeId,
    /// The line address (`addr`).
    pub line: LineAddr,
}

impl Probe {
    /// Creates a probe.
    pub fn new(writer: NodeId, pc: Pc, home: NodeId, line: LineAddr) -> Self {
        Probe {
            writer,
            pc,
            home,
            line,
        }
    }
}
