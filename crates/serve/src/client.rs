//! A blocking client for the prediction service.

use crate::replication::{ReplOp, MAX_SEGMENT_OPS};
use crate::wire::{self, Request, Response, StatsReply};
use crate::Probe;
use csp_trace::SharingBitmap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;

enum Transport {
    Tcp {
        reader: BufReader<TcpStream>,
        writer: BufWriter<TcpStream>,
    },
    #[cfg(unix)]
    Unix {
        reader: BufReader<UnixStream>,
        writer: BufWriter<UnixStream>,
    },
}

/// A synchronous request/response client.
///
/// One request is in flight at a time; clone nothing — open one client
/// per thread (the server multiplexes connections onto the shared
/// engine).
pub struct Client {
    transport: Transport,
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        match resp {
            Response::Error(msg) => format!("server error: {msg}"),
            other => format!("unexpected response: {other:?}"),
        },
    )
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            transport: Transport::Tcp {
                reader: BufReader::new(stream.try_clone()?),
                writer: BufWriter::new(stream),
            },
        })
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    #[cfg(unix)]
    pub fn connect_unix<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        let stream = UnixStream::connect(path)?;
        Ok(Client {
            transport: Transport::Unix {
                reader: BufReader::new(stream.try_clone()?),
                writer: BufWriter::new(stream),
            },
        })
    }

    /// Sets read/write deadlines on the underlying socket. A request
    /// against a stalled server then fails with a timeout-kind error
    /// ([`io::ErrorKind::WouldBlock`] or [`io::ErrorKind::TimedOut`])
    /// instead of blocking forever. `None` removes a deadline.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures (e.g. a zero `Duration`).
    pub fn set_timeouts(
        &mut self,
        read: Option<std::time::Duration>,
        write: Option<std::time::Duration>,
    ) -> io::Result<()> {
        match &self.transport {
            Transport::Tcp { reader, writer } => {
                reader.get_ref().set_read_timeout(read)?;
                writer.get_ref().set_write_timeout(write)
            }
            #[cfg(unix)]
            Transport::Unix { reader, writer } => {
                reader.get_ref().set_read_timeout(read)?;
                writer.get_ref().set_write_timeout(write)
            }
        }
    }

    fn round_trip(&mut self, req: &Request) -> io::Result<Response> {
        fn go<R: Read, W: Write>(r: &mut R, w: &mut W, req: &Request) -> io::Result<Response> {
            wire::write_request(w, req)?;
            w.flush()?;
            wire::read_response(r)
        }
        match &mut self.transport {
            Transport::Tcp { reader, writer } => go(reader, writer, req),
            #[cfg(unix)]
            Transport::Unix { reader, writer } => go(reader, writer, req),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a non-pong reply.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Predicts the reader bitmap for one probe.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a mismatched
    /// reply (including server-side errors).
    pub fn predict(&mut self, probe: &Probe) -> io::Result<SharingBitmap> {
        match self.round_trip(&Request::Predict(*probe))? {
            Response::Prediction(b) => Ok(b),
            other => Err(unexpected(other)),
        }
    }

    /// Predicts a batch of probes; the reply preserves probe order.
    ///
    /// # Errors
    ///
    /// As [`predict`](Self::predict), plus [`io::ErrorKind::InvalidData`]
    /// if the reply count differs from the probe count.
    pub fn predict_batch(&mut self, probes: &[Probe]) -> io::Result<Vec<SharingBitmap>> {
        match self.round_trip(&Request::PredictBatch(probes.to_vec()))? {
            Response::PredictionBatch(bitmaps) if bitmaps.len() == probes.len() => Ok(bitmaps),
            Response::PredictionBatch(bitmaps) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "sent {} probes, got {} predictions",
                    probes.len(),
                    bitmaps.len()
                ),
            )),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the engine's merged live statistics.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a mismatched
    /// reply.
    pub fn stats(&mut self) -> io::Result<StatsReply> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's full metrics registry as Prometheus-style
    /// text (parse with `csp_obs::parse_text`).
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a mismatched
    /// reply.
    pub fn metrics(&mut self) -> io::Result<String> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(other)),
        }
    }

    /// Pushes replication operations into a leader's write path,
    /// returning the durable journal offset after them — how a remote
    /// trace producer feeds a live engine without file replay. `ops`
    /// larger than [`MAX_SEGMENT_OPS`] are sent in several frames; the
    /// returned head is the offset after the last one.
    ///
    /// `fingerprint` must come from
    /// [`replication::fingerprint`](crate::replication::fingerprint) for
    /// the leader's scheme and width; a mismatch draws a typed server
    /// error (surfaced here as [`io::ErrorKind::InvalidData`]), as does
    /// pushing at a read-only follower.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a mismatched or
    /// error reply.
    pub fn ingest(&mut self, fingerprint: u32, ops: &[ReplOp]) -> io::Result<u64> {
        self.ingest_at_epoch(fingerprint, 0, ops)
    }

    /// [`ingest`](Self::ingest) under an explicit fencing epoch. Epoch 0
    /// is "no claim" (what `ingest` sends); any other value below the
    /// server's current term identifies a deposed leader and draws a
    /// typed `fenced` error (surfaced as [`io::ErrorKind::InvalidData`]).
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a mismatched,
    /// fenced, or error reply.
    pub fn ingest_at_epoch(
        &mut self,
        fingerprint: u32,
        epoch: u64,
        ops: &[ReplOp],
    ) -> io::Result<u64> {
        // An empty push still round-trips once: it validates the
        // fingerprint (and epoch) and reports the current head.
        let chunks: Vec<&[ReplOp]> = if ops.is_empty() {
            vec![&[]]
        } else {
            ops.chunks(MAX_SEGMENT_OPS).collect()
        };
        let mut head = 0u64;
        for chunk in chunks {
            let request = Request::Ingest {
                fingerprint,
                epoch,
                ops: chunk.to_vec(),
            };
            head = match self.round_trip(&request)? {
                Response::IngestAck { head } => head,
                other => return Err(unexpected(other)),
            };
        }
        Ok(head)
    }

    /// Promotes the connected server to leadership: its fencing epoch is
    /// bumped to at least `min_epoch` (always past its current term), it
    /// leaves follower mode, and — when the server runs the full
    /// failover stack — its follower loop stops and downstreams are
    /// re-parented. Returns the new `(epoch, head)`. Idempotent.
    ///
    /// # Errors
    ///
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a fingerprint
    /// mismatch or error reply.
    pub fn promote(&mut self, fingerprint: u32, min_epoch: u64) -> io::Result<(u64, u64)> {
        match self.round_trip(&Request::Promote {
            fingerprint,
            min_epoch,
        })? {
            Response::Promoted { epoch, head } => Ok((epoch, head)),
            other => Err(unexpected(other)),
        }
    }
}
