//! The load generator: drives a running server with batched prediction
//! queries and reports throughput and latency percentiles.
//!
//! Latency is accumulated in a `csp-obs` log-bucketed [`Histogram`]
//! rather than a sorted sample vector: memory stays constant no matter
//! how many frames a run sends, and the full distribution (not just two
//! cut points) survives into [`LoadReport::latency`] for JSON output
//! and cross-run comparison.

use crate::{Client, Probe};
use csp_obs::{Histogram, HistogramSnapshot};
use csp_trace::{LineAddr, NodeId, Pc};
use std::fmt;
use std::io;
use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

/// Load-generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Probes per request frame (amortizes one round-trip over the
    /// batch; the dominant throughput lever).
    pub batch: usize,
    /// Number of request frames to send.
    pub frames: usize,
    /// Machine width probes are drawn for.
    pub nodes: usize,
    /// Seed for the deterministic probe stream.
    pub seed: u64,
    /// Per-request socket deadline. A frame that exceeds it is counted
    /// as a timeout (the generator reconnects and keeps going) instead
    /// of hanging the whole run. `None` waits forever.
    pub timeout: Option<Duration>,
    /// Retry transient connect failures (refused/reset/aborted — a
    /// server mid-restart) with backoff instead of failing the run.
    /// `false` is the `--no-retry` escape hatch: any connect failure is
    /// immediately fatal, for scripts that want a crisp liveness probe.
    pub retry: bool,
    /// Connect attempts per (re)connection before giving up, when
    /// [`retry`](Self::retry) is on.
    pub retry_attempts: u32,
    /// Delay before the first connect retry; doubles per attempt.
    pub retry_backoff: Duration,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            batch: 1024,
            frames: 1000,
            nodes: 16,
            seed: 0x5EED,
            timeout: Some(Duration::from_secs(10)),
            retry: true,
            retry_attempts: 5,
            retry_backoff: Duration::from_millis(20),
        }
    }
}

/// The measured outcome of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Total probes answered.
    pub probes: u64,
    /// Request frames sent.
    pub frames: u64,
    /// Wall-clock time over the whole run.
    pub elapsed: Duration,
    /// Median per-frame round-trip latency.
    pub p50: Duration,
    /// 90th-percentile per-frame round-trip latency.
    pub p90: Duration,
    /// 99th-percentile per-frame round-trip latency.
    pub p99: Duration,
    /// 99.9th-percentile per-frame round-trip latency.
    pub p999: Duration,
    /// Worst per-frame round-trip latency observed.
    pub max: Duration,
    /// The full per-frame latency distribution (one observation per
    /// answered frame).
    pub latency: HistogramSnapshot,
    /// Frames that missed the [`LoadOptions::timeout`] deadline.
    pub timeouts: u64,
    /// Connections the server (or network) dropped mid-run; each one
    /// forced a reconnect.
    pub disconnects: u64,
    /// Transient connect failures absorbed by retry-with-backoff
    /// ([`LoadOptions::retry`]) — attempts that failed and were retried,
    /// not attempts that succeeded.
    pub connect_retries: u64,
}

impl LoadReport {
    /// Aggregate predictor queries per second.
    pub fn qps(&self) -> f64 {
        self.probes as f64 / self.elapsed.as_secs_f64()
    }

    /// Serializes the report — including the latency histogram's
    /// non-empty buckets — as one JSON object, for `csp-served bench
    /// --json` and machine-readable sweep logs.
    pub fn to_json(&self) -> String {
        let mut buckets = String::new();
        let mut first = true;
        for (i, &count) in self.latency.buckets.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first {
                buckets.push(',');
            }
            first = false;
            buckets.push_str(&format!(
                "{{\"le_ns\":{},\"count\":{count}}}",
                csp_obs::bucket_upper(i)
            ));
        }
        format!(
            "{{\"probes\":{},\"frames\":{},\"elapsed_s\":{:.6},\"qps\":{:.1},\
             \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\
             \"timeouts\":{},\"disconnects\":{},\"connect_retries\":{},\
             \"latency\":{{\"count\":{},\"sum_ns\":{},\"buckets\":[{buckets}]}}}}",
            self.probes,
            self.frames,
            self.elapsed.as_secs_f64(),
            self.qps(),
            self.p50.as_nanos(),
            self.p90.as_nanos(),
            self.p99.as_nanos(),
            self.p999.as_nanos(),
            self.max.as_nanos(),
            self.timeouts,
            self.disconnects,
            self.connect_retries,
            self.latency.count(),
            self.latency.sum,
        )
    }
}

impl fmt::Display for LoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} probes in {:.3}s = {:.0} queries/sec (frame p50 {:.1}us, p99 {:.1}us)",
            self.probes,
            self.elapsed.as_secs_f64(),
            self.qps(),
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
        )?;
        if self.timeouts > 0 || self.disconnects > 0 || self.connect_retries > 0 {
            write!(
                f,
                " [{} timeouts, {} disconnects, {} connect retries]",
                self.timeouts, self.disconnects, self.connect_retries
            )?;
        }
        Ok(())
    }
}

/// SplitMix64: a tiny deterministic generator for the probe stream (no
/// external dependency, identical stream on every run of a given seed).
#[derive(Clone, Copy, Debug)]
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The deterministic probe at position `i` of the stream for `seed`.
pub fn probe_stream(seed: u64, nodes: usize, count: usize) -> Vec<Probe> {
    let mut rng = SplitMix64(seed);
    (0..count)
        .map(|_| {
            let r = rng.next_u64();
            Probe::new(
                NodeId((r % nodes as u64) as u8),
                Pc((r >> 8) as u32 & 0x3FF),
                NodeId(((r >> 40) % nodes as u64) as u8),
                LineAddr((r >> 20) & 0xFFFF),
            )
        })
        .collect()
}

/// `true` for the error kinds a socket deadline produces.
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// `true` for connect failures worth retrying: the server is restarting
/// or its accept queue hiccuped, not structurally unreachable.
fn is_transient_connect(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// Connects with the options' deadlines, absorbing up to
/// [`LoadOptions::retry_attempts`] transient failures with doubling
/// backoff when retry is enabled. Each absorbed failure increments
/// `retries`.
fn connect_with_retry<A: ToSocketAddrs>(
    addr: &A,
    opts: &LoadOptions,
    retries: &mut u64,
) -> io::Result<Client> {
    let mut attempt: u32 = 0;
    loop {
        let result = Client::connect_tcp(addr).and_then(|mut client| {
            client.set_timeouts(opts.timeout, opts.timeout)?;
            Ok(client)
        });
        match result {
            Ok(client) => return Ok(client),
            Err(e) if opts.retry && attempt < opts.retry_attempts && is_transient_connect(&e) => {
                *retries += 1;
                std::thread::sleep(opts.retry_backoff * 2u32.saturating_pow(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs a load test against the server at `addr`, sending
/// [`LoadOptions::frames`] batches of [`LoadOptions::batch`] probes and
/// timing each round-trip.
///
/// A frame that misses the [`LoadOptions::timeout`] deadline or lands on
/// a dropped connection is counted (see [`LoadReport::timeouts`] and
/// [`LoadReport::disconnects`]) rather than failing the run; the
/// generator reconnects and continues. Only successfully answered frames
/// contribute probes and latency samples.
///
/// Transient *connect* failures (refused/reset while a server restarts)
/// are retried with doubling backoff and tallied in
/// [`LoadReport::connect_retries`] instead of failing the run or
/// inflating the disconnect ledger; [`LoadOptions::retry`] `= false`
/// (the `--no-retry` flag) restores fail-fast connects.
///
/// # Errors
///
/// Propagates initial-connection and reconnection failures once retry is
/// exhausted or disabled (a server that is *gone* still fails the run;
/// one that is merely slow or flaky does not).
pub fn run_load<A: ToSocketAddrs>(addr: A, opts: &LoadOptions) -> io::Result<LoadReport> {
    let mut connect_retries = 0u64;
    let mut client = connect_with_retry(&addr, opts, &mut connect_retries)?;
    client.ping()?;
    // One warm-up frame so connection setup is not in the measurement.
    let probes = probe_stream(opts.seed, opts.nodes, opts.batch.max(1));
    let _ = client.predict_batch(&probes)?;

    // Bounded-memory latency accounting: one histogram, not one sample
    // per frame.
    let histogram = Histogram::new();
    let mut answered = 0u64;
    let mut timeouts = 0u64;
    let mut disconnects = 0u64;
    let start = Instant::now();
    for frame in 0..opts.frames {
        // Rotate through frame-specific probe sets so predictions are not
        // answered out of a single hot cache line.
        let probes = probe_stream(opts.seed ^ frame as u64, opts.nodes, opts.batch.max(1));
        let t0 = Instant::now();
        match client.predict_batch(&probes) {
            Ok(preds) => {
                histogram.record_duration(t0.elapsed());
                answered += 1;
                debug_assert_eq!(preds.len(), probes.len());
            }
            Err(e) => {
                if is_timeout(&e) {
                    timeouts += 1;
                } else {
                    disconnects += 1;
                }
                // Either way the stream state is unknown (a late reply
                // would desynchronize request/response pairing), so start
                // a fresh connection.
                client = connect_with_retry(&addr, opts, &mut connect_retries)?;
            }
        }
    }
    let elapsed = start.elapsed();
    let latency = histogram.snapshot();
    Ok(LoadReport {
        probes: answered * opts.batch.max(1) as u64,
        frames: opts.frames as u64,
        elapsed,
        p50: latency.quantile_duration(0.50),
        p90: latency.quantile_duration(0.90),
        p99: latency.quantile_duration(0.99),
        p999: latency.quantile_duration(0.999),
        max: Duration::from_nanos(latency.max),
        latency,
        timeouts,
        disconnects,
        connect_retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Server, ShardedEngine};
    use std::sync::Arc;

    #[test]
    fn probe_stream_is_deterministic_and_in_range() {
        let a = probe_stream(42, 16, 500);
        let b = probe_stream(42, 16, 500);
        assert_eq!(a, b);
        assert_ne!(a, probe_stream(43, 16, 500));
        for p in &a {
            assert!(p.writer.index() < 16);
            assert!(p.home.index() < 16);
        }
    }

    #[test]
    fn load_run_reports_sane_numbers() {
        let engine = Arc::new(ShardedEngine::new(
            "last(pid+pc8)1[direct]".parse().unwrap(),
            16,
            2,
        ));
        let server = Server::bind_tcp("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        std::thread::spawn(move || server.run());

        let opts = LoadOptions {
            batch: 64,
            frames: 20,
            ..LoadOptions::default()
        };
        let report = run_load(addr, &opts).unwrap();
        assert_eq!(report.probes, 64 * 20);
        assert_eq!(report.frames, 20);
        assert!(report.qps() > 0.0);
        assert!(report.p99 >= report.p50);
        assert!(report.p90 >= report.p50);
        assert!(report.p999 >= report.p99);
        assert!(report.max >= report.p999);
        // The histogram holds one observation per answered frame.
        assert_eq!(report.latency.count(), 20);
        assert!(report.to_string().contains("queries/sec"));
        let json = report.to_json();
        assert!(json.contains("\"probes\":1280"), "{json}");
        assert!(json.contains("\"latency\":{\"count\":20"), "{json}");
        assert!(json.contains("\"buckets\":[{\"le_ns\":"), "{json}");
        // A healthy run has a clean robustness ledger, and Display omits it.
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.disconnects, 0);
        assert!(!report.to_string().contains("timeouts"));
        // The engine really answered them (warm-up frame included).
        assert_eq!(engine.stats().queries, 64 * 21);
    }

    #[test]
    fn transient_connect_refusals_are_retried_not_fatal() {
        // Reserve a port, then close the listener: connects are refused
        // until the real server binds the same port moments later — a
        // leader mid-restart, as the load generator sees it.
        let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let engine = Arc::new(ShardedEngine::new(
            "last(pid+pc8)1[direct]".parse().unwrap(),
            16,
            1,
        ));
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let server = Server::bind_tcp(addr, engine).unwrap();
            server.run()
        });

        let opts = LoadOptions {
            batch: 8,
            frames: 5,
            retry_backoff: Duration::from_millis(50),
            ..LoadOptions::default()
        };
        let report = run_load(addr, &opts).unwrap();
        assert!(report.connect_retries >= 1, "{report}");
        assert_eq!(report.probes, 5 * 8, "{report}");
        assert_eq!(report.disconnects, 0, "retries leaked into disconnects");
        assert!(report.to_string().contains("connect retries"), "{report}");
    }

    #[test]
    fn no_retry_fails_fast_on_refused_connect() {
        let placeholder = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let opts = LoadOptions {
            retry: false,
            ..LoadOptions::default()
        };
        let err = run_load(addr, &opts).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn dropped_connections_are_counted_not_fatal() {
        use crate::server::answer;
        use crate::wire;
        use std::io::Write as _;

        // A deliberately flaky server: answers three requests per
        // connection, then hangs up mid-conversation.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let engine = Arc::new(ShardedEngine::new(
            "last(pid+pc8)1[direct]".parse().unwrap(),
            16,
            1,
        ));
        let flaky_engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                let mut reader = std::io::BufReader::new(&stream);
                let mut writer = std::io::BufWriter::new(&stream);
                for _ in 0..3 {
                    let Ok(Some(payload)) = wire::read_frame(&mut reader) else {
                        break;
                    };
                    let Ok(req) = wire::decode_request(&payload) else {
                        break;
                    };
                    let resp = answer(&flaky_engine, req);
                    if wire::write_response(&mut writer, &resp)
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        break;
                    }
                }
            }
        });

        let opts = LoadOptions {
            batch: 8,
            frames: 10,
            ..LoadOptions::default()
        };
        let report = run_load(addr, &opts).unwrap();
        // Connection 1 spends its three answers on ping + warm-up +
        // frame 0; each reconnect then serves three frames. Ten frames
        // need three reconnects.
        assert_eq!(report.disconnects, 3, "{report}");
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.frames, 10);
        // Only answered frames contribute probes.
        assert_eq!(report.probes, 7 * 8, "{report}");
        assert!(report.to_string().contains("3 disconnects"), "{report}");
    }
}
