//! The online == offline proof, end to end: replaying every benchmark of
//! the paper's suite through the sharded online engine must produce
//! screening statistics *bit-identical* to the offline evaluation engine
//! (`csp_core::engine::run_scheme`), for every prediction function family
//! and update mode the paper simulates.
//!
//! This is the guarantee that makes the serving layer trustworthy: the
//! numbers a deployment reports are the numbers the paper's methodology
//! defines, with sharding and batching changing nothing but wall-clock
//! interleaving.

use csp_core::engine::run_scheme;
use csp_core::Scheme;
use csp_serve::ShardedEngine;
use csp_workloads::generate_suite;

/// Small but non-trivial suite: every benchmark present, thousands of
/// events each, same generator the harness uses.
const SCALE: f64 = 0.02;
const SEED: u64 = 11;

fn verify(specs: &[&str], shards: usize) {
    let suite = generate_suite(SCALE, SEED);
    assert_eq!(suite.len(), 7, "the paper's seven benchmarks");
    for spec in specs {
        let scheme: Scheme = spec.parse().expect(spec);
        for bench in &suite {
            let offline = run_scheme(&bench.trace, &scheme);
            let engine = ShardedEngine::new(scheme, bench.trace.nodes(), shards);
            engine.replay_trace(&bench.trace).expect("matching width");
            let snapshot = engine.stats();
            assert_eq!(
                snapshot.confusion, offline,
                "{spec} on {} with {shards} shards: online != offline",
                bench.benchmark
            );
            assert_eq!(snapshot.scored, bench.trace.len() as u64);
            // The screening rates derive deterministically from the
            // counts, so they are bit-identical too.
            assert_eq!(
                snapshot.screening().pvp.to_bits(),
                offline.screening().pvp.to_bits()
            );
        }
    }
}

#[test]
fn last_is_bit_identical_across_the_suite() {
    verify(
        &[
            "last(pid+pc8)1[direct]",
            "last(pid+pc8)1[forwarded]",
            "last(dir+add8)1[direct]",
        ],
        3,
    );
}

#[test]
fn union_depth2_is_bit_identical_across_the_suite() {
    verify(
        &["union(pid+pc8)2[direct]", "union(pid+pc8)2[forwarded]"],
        3,
    );
}

#[test]
fn pas_depth2_is_bit_identical_across_the_suite() {
    verify(&["pas(pid+pc8)2[direct]", "pas(add8)2[direct]"], 3);
}

#[test]
fn ordered_oracle_is_bit_identical_across_the_suite() {
    verify(&["inter(pid+pc8)2[ordered]"], 3);
}

#[test]
fn shard_count_does_not_change_results() {
    // The same scheme over the same workload with different shard counts
    // must agree bit for bit — sharding is a pure routing choice.
    let suite = generate_suite(SCALE, SEED);
    let scheme: Scheme = "union(pid+pc6+add4)2[forwarded]".parse().unwrap();
    let bench = &suite[0];
    let offline = run_scheme(&bench.trace, &scheme);
    for shards in [1, 2, 5, 8] {
        let engine = ShardedEngine::new(scheme, bench.trace.nodes(), shards);
        engine.replay_trace(&bench.trace).expect("matching width");
        assert_eq!(engine.stats().confusion, offline, "{shards} shards");
    }
}
