//! The crash-recovery proof, end to end through the real binary: kill
//! `csp-served replay` hard (SIGABRT, no cleanup) partway through a
//! trace, restore from the last durable snapshot, finish the replay —
//! and the final screening statistics must be *bit-identical* to an
//! uninterrupted run's.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const SCHEME: &str = "union(pid+pc8)2[direct]";
const SHARDS: &str = "3";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_csp-served")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("csp-crash-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Writes one of the suite's benchmark traces to disk and returns its
/// path and event count.
fn write_trace(dir: &TempDir) -> (PathBuf, usize) {
    let suite = csp_workloads::generate_suite(0.02, 11);
    let bench = &suite[0];
    let path = dir.path("trace.csptrc");
    let file = fs::File::create(&path).unwrap();
    csp_trace::io::write_trace(std::io::BufWriter::new(file), &bench.trace).unwrap();
    (path, bench.trace.len())
}

fn arg(p: &Path) -> &str {
    p.to_str().unwrap()
}

#[test]
fn killed_replay_restores_bit_identically() {
    let dir = TempDir::new("replay");
    let (trace, events) = write_trace(&dir);
    assert!(events > 100, "trace too small to crash mid-way: {events}");
    let snapdir = dir.path("snaps");
    let chunk = (events / 10).max(1).to_string();
    let crash_at = (events / 2).to_string();

    // Reference: one uninterrupted replay (which itself verifies
    // online == offline and exits nonzero on divergence).
    let ref_stats = dir.path("ref-stats.txt");
    let status = Command::new(bin())
        .args(["replay", "--scheme", SCHEME, "--shards", SHARDS])
        .args(["--stats-out", arg(&ref_stats), arg(&trace)])
        .status()
        .unwrap();
    assert!(status.success(), "reference replay failed: {status}");

    // Crash run: snapshot every chunk, then die hard (std::process::abort,
    // the SIGKILL stand-in — no destructors, no flush) mid-trace.
    let status = Command::new(bin())
        .args(["replay", "--scheme", SCHEME, "--shards", SHARDS])
        .args([
            "--snapshot-dir",
            arg(&snapdir),
            "--snapshot-every-events",
            &chunk,
        ])
        .args(["--crash-after", &crash_at, arg(&trace)])
        .status()
        .unwrap();
    assert!(!status.success(), "the crash run was supposed to die");
    assert!(
        fs::read_dir(&snapdir).unwrap().count() > 0,
        "the crash run left no snapshot behind"
    );

    // The inspector can read what the crash left.
    let inspect = Command::new(bin())
        .args(["snapshot", arg(&snapdir)])
        .output()
        .unwrap();
    assert!(inspect.status.success(), "snapshot inspect failed");
    let line = String::from_utf8_lossy(&inspect.stdout);
    assert!(line.contains("union(pid+pc8)2[direct]"), "got: {line}");

    // Recovery: restore the newest snapshot and replay the tail. The
    // command verifies online == offline itself, so a zero exit already
    // means the recovered run matches the offline reference engine.
    let rec_stats = dir.path("rec-stats.txt");
    let status = Command::new(bin())
        .args(["replay", "--scheme", SCHEME, "--shards", SHARDS])
        .args([
            "--snapshot-dir",
            arg(&snapdir),
            "--snapshot-every-events",
            &chunk,
        ])
        .args(["--restore", "--stats-out", arg(&rec_stats), arg(&trace)])
        .status()
        .unwrap();
    assert!(status.success(), "recovery replay failed: {status}");

    // And the recovered statistics equal the uninterrupted run's, field
    // for field, bit for bit.
    let reference = fs::read_to_string(&ref_stats).unwrap();
    let recovered = fs::read_to_string(&rec_stats).unwrap();
    assert!(!reference.is_empty());
    assert_eq!(
        recovered, reference,
        "recovered replay diverged from the uninterrupted run"
    );
}

#[test]
fn restore_without_snapshots_starts_fresh_and_still_matches() {
    let dir = TempDir::new("fresh");
    let (trace, _) = write_trace(&dir);
    let snapdir = dir.path("empty-snaps");
    let stats = dir.path("stats.txt");
    let ref_stats = dir.path("ref-stats.txt");

    let status = Command::new(bin())
        .args(["replay", "--scheme", SCHEME, "--shards", SHARDS])
        .args(["--stats-out", arg(&ref_stats), arg(&trace)])
        .status()
        .unwrap();
    assert!(status.success());

    // --restore over an empty directory is a fresh start, not an error.
    let status = Command::new(bin())
        .args(["replay", "--scheme", SCHEME, "--shards", SHARDS])
        .args(["--snapshot-dir", arg(&snapdir), "--restore"])
        .args(["--stats-out", arg(&stats), arg(&trace)])
        .status()
        .unwrap();
    assert!(status.success(), "fresh --restore run failed: {status}");
    assert_eq!(
        fs::read_to_string(&stats).unwrap(),
        fs::read_to_string(&ref_stats).unwrap()
    );
}

#[test]
fn usage_errors_exit_2_runtime_errors_exit_1() {
    // Usage: missing --scheme.
    let status = Command::new(bin()).arg("replay").status().unwrap();
    assert_eq!(status.code(), Some(2));
    // Usage: unknown subcommand.
    let status = Command::new(bin()).arg("transmogrify").status().unwrap();
    assert_eq!(status.code(), Some(2));
    // Runtime: a trace that does not exist.
    let status = Command::new(bin())
        .args(["replay", "--scheme", SCHEME, "/definitely/not/here.csptrc"])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
    // Runtime: snapshot inspection over an empty directory.
    let dir = TempDir::new("exitcodes");
    let status = Command::new(bin())
        .args(["snapshot", arg(&dir.path("nothing"))])
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(1));
}
