//! The wire-level chaos harness: adversarial connections throw every
//! [`csp_trace::fault::WireFault`] at a live server — truncation, bit
//! flips, hostile length prefixes, slowloris dribble — while healthy
//! clients keep querying. The server must answer every healthy probe
//! with the exactly correct prediction throughout, disconnect the
//! abusers, and still be accepting when the dust settles.

use csp_serve::wire::{self, Request, Response};
use csp_serve::{Client, Probe, Server, ServerOptions, ShardedEngine};
use csp_trace::fault::{FaultyWriter, WireFault};
use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const NODES: u8 = 16;

/// Trains a deterministic engine: writer `pid` at pc 0 always sees
/// reader `15 - pid` next, so every prediction has one known-correct
/// answer.
fn trained_engine() -> Arc<ShardedEngine> {
    let engine = ShardedEngine::new("last(pid)1[direct]".parse().unwrap(), NODES as usize, 3);
    for pid in 0..NODES {
        engine.ingest_event(&SharingEvent::new(
            NodeId(pid),
            Pc(0),
            LineAddr(0),
            NodeId(0),
            SharingBitmap::singleton(NodeId(NODES - 1 - pid)),
            Some((NodeId(pid), Pc(0))),
        ));
    }
    engine.flush();
    Arc::new(engine)
}

fn probe(pid: u8) -> Probe {
    Probe::new(NodeId(pid), Pc(0), NodeId(0), LineAddr(0))
}

fn expected(pid: u8) -> SharingBitmap {
    SharingBitmap::singleton(NodeId(NODES - 1 - pid))
}

/// Sends a request through a [`FaultyWriter`] applying `fault` to the
/// frame bytes, then returns the socket for reading replies.
fn send_faulted(addr: SocketAddr, fault: WireFault, req: &Request) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut w = FaultyWriter::new(&stream, fault);
    // Faults may make the write itself fail (peer hangs up mid-dribble);
    // that is the adversary's problem, not the test's.
    let _ = wire::write_request(&mut w, req);
    let _ = (&stream).flush();
    stream
}

/// Truncation: the frame stops mid-payload and the writer hangs up. The
/// server must treat it as a mid-frame EOF and drop only that connection.
fn adversary_truncation(addr: SocketAddr) {
    let stream = send_faulted(
        addr,
        WireFault::Truncate { offset: 6 },
        &Request::Predict(probe(0)),
    );
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // Whatever comes back (nothing, or an error on some platforms), the
    // read must terminate rather than hang.
    let mut reader = BufReader::new(&stream);
    let _ = wire::read_frame(&mut reader);
}

/// Bit flips: every flipped frame draws a typed checksum error, and a
/// connection that keeps flipping exhausts its error budget and is cut.
fn adversary_bit_flips(addr: SocketAddr, budget: u32) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let mut typed_errors = 0u32;
    let mut disconnected = false;
    for _ in 0..budget + 4 {
        let mut w = FaultyWriter::new(
            &stream,
            WireFault::Flip {
                offset: 5,
                xor: 0x20,
            },
        );
        if wire::write_request(&mut w, &Request::Predict(probe(1))).is_err() {
            disconnected = true;
            break;
        }
        match wire::read_response(&mut reader) {
            // The farewell frame before the cut may or may not arrive
            // before the close races it; both count as the disconnect.
            Ok(Response::Error(msg)) if msg.contains("budget") => {
                disconnected = true;
                break;
            }
            Ok(Response::Error(msg)) => {
                assert!(msg.contains("checksum"), "got: {msg}");
                typed_errors += 1;
            }
            Ok(other) => panic!("corrupt frame answered with {other:?}"),
            Err(_) => {
                disconnected = true;
                break;
            }
        }
    }
    assert!(typed_errors > 0, "never saw a typed checksum error");
    assert!(
        disconnected || typed_errors > budget,
        "server tolerated {typed_errors} corrupt frames without cutting the connection"
    );
    // Drain to the disconnect if it came via the final budget frame.
    while wire::read_response(&mut reader).is_ok() {}
}

/// Oversized length prefix: framing is unrecoverable, so the server must
/// send one typed error and hang up.
fn adversary_oversized(addr: SocketAddr) {
    let stream = send_faulted(
        addr,
        WireFault::OversizedLen { len: u32::MAX / 2 },
        &Request::Ping,
    );
    let mut reader = BufReader::new(&stream);
    match wire::read_response(&mut reader) {
        Ok(Response::Error(msg)) => assert!(msg.contains("limit"), "got: {msg}"),
        Ok(other) => panic!("hostile length answered with {other:?}"),
        Err(e) => panic!("expected a typed error before the disconnect: {e}"),
    }
    assert!(
        wire::read_frame(&mut reader).unwrap().is_none(),
        "server kept the connection after losing framing"
    );
}

/// Slowloris: bytes dribble in slower than the read deadline. The server
/// must cut the connection instead of pinning a handler thread.
fn adversary_slowloris(addr: SocketAddr) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut w = FaultyWriter::new(
        &stream,
        WireFault::Slowloris {
            delay_micros: 400_000, // well past the server's 150ms deadline
        },
    );
    // The server cuts us off mid-dribble; the tail of the write may fail.
    let _ = wire::write_request(&mut w, &Request::Ping);
    let mut reader = BufReader::new(&stream);
    match wire::read_response(&mut reader) {
        Ok(Response::Error(msg)) => assert!(msg.contains("deadline"), "got: {msg}"),
        Ok(other) => panic!("slowloris answered with {other:?}"),
        // The cut can also surface as a plain reset once the error frame
        // raced the close; either way the connection ended.
        Err(_) => {}
    }
}

#[test]
fn server_survives_wire_chaos_with_zero_incorrect_predictions() {
    let budget = 3u32;
    let server = Server::bind_tcp("127.0.0.1:0", trained_engine())
        .unwrap()
        .with_options(ServerOptions {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_secs(5)),
            error_budget: budget,
            drain_timeout: Duration::from_secs(2),
        });
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Healthy clients: hammer known-answer predictions for the whole
    // duration of the chaos. Every single answer must be exactly right.
    let stop = Arc::new(AtomicBool::new(false));
    let healthy: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                client
                    .set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
                    .unwrap();
                let mut correct = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for pid in 0..NODES {
                        let got = client
                            .predict(&probe(pid))
                            .expect("healthy connection must stay served");
                        assert_eq!(got, expected(pid), "incorrect healthy prediction");
                        correct += 1;
                    }
                }
                correct
            })
        })
        .collect();

    // Chaos, two full rounds of every fault class.
    for _ in 0..2 {
        adversary_truncation(addr);
        adversary_bit_flips(addr, budget);
        adversary_oversized(addr);
        adversary_slowloris(addr);
    }

    stop.store(true, Ordering::Release);
    let mut total_correct = 0u64;
    for h in healthy {
        total_correct += h.join().expect("healthy client panicked");
    }
    assert!(
        total_correct >= 2 * NODES as u64,
        "healthy clients barely ran: {total_correct} predictions"
    );

    // The server is still accepting, still correct, and never had to
    // restart a shard over any of it (wire faults die at the framing
    // layer, far from the predictor state).
    let mut client = Client::connect_tcp(addr).unwrap();
    client.ping().unwrap();
    assert_eq!(client.predict(&probe(7)).unwrap(), expected(7));
    let stats = client.stats().unwrap();
    assert_eq!(stats.restarts, 0, "wire chaos must not reach shard state");
    assert_eq!(stats.updates, NODES as u64);
    drop(client);

    // And it still shuts down gracefully afterwards.
    shutdown.shutdown();
    let result = server_thread.join().expect("server thread");
    assert!(result.is_ok(), "shutdown after chaos errored: {result:?}");
}

#[test]
fn interleaved_chaos_and_writes_keep_state_exact() {
    // Adversarial frames interleaved with real ingest through a healthy
    // connection: the table must end exactly where a clean run ends.
    let engine = trained_engine();
    let server = Server::bind_tcp("127.0.0.1:0", Arc::clone(&engine))
        .unwrap()
        .with_options(ServerOptions {
            read_timeout: Some(Duration::from_millis(150)),
            error_budget: 2,
            ..ServerOptions::default()
        });
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    for round in 0..3 {
        adversary_bit_flips(addr, 2);
        adversary_oversized(addr);
        // Healthy traffic between the attacks.
        let mut client = Client::connect_tcp(addr).unwrap();
        for pid in 0..NODES {
            assert_eq!(
                client.predict(&probe(pid)).unwrap(),
                expected(pid),
                "round {round}"
            );
        }
    }
    assert_eq!(engine.stats().total_restarts(), 0);
}

/// The load generator's ledger stays clean against a healthy server even
/// while chaos runs — robustness accounting must not invent failures.
#[test]
fn load_generator_ledger_is_clean_under_parallel_chaos() {
    let server = Server::bind_tcp("127.0.0.1:0", trained_engine())
        .unwrap()
        .with_options(ServerOptions {
            read_timeout: Some(Duration::from_millis(150)),
            error_budget: 3,
            ..ServerOptions::default()
        });
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    let chaos = std::thread::spawn(move || {
        adversary_truncation(addr);
        adversary_oversized(addr);
        adversary_bit_flips(addr, 3);
    });
    let report = csp_serve::run_load(
        addr,
        &csp_serve::LoadOptions {
            batch: 64,
            frames: 50,
            nodes: NODES as usize,
            ..Default::default()
        },
    )
    .unwrap();
    chaos.join().unwrap();
    assert_eq!(report.timeouts, 0, "{report}");
    assert_eq!(report.disconnects, 0, "{report}");
    assert_eq!(report.probes, 64 * 50);

    let mut writer = BufWriter::new(TcpStream::connect(addr).unwrap());
    // One last well-formed frame proves the listener is still alive.
    wire::write_request(&mut writer, &Request::Ping).unwrap();
    writer.flush().unwrap();
}
