//! The wire-level chaos harness: adversarial connections throw every
//! [`csp_trace::fault::WireFault`] at a live server — truncation, bit
//! flips, hostile length prefixes, slowloris dribble — while healthy
//! clients keep querying. The server must answer every healthy probe
//! with the exactly correct prediction throughout, disconnect the
//! abusers, and still be accepting when the dust settles.

use csp_serve::replication::{self, run_follower, FollowerOptions, ReplOp, ReplicaStatus};
use csp_serve::wire::{self, Request, Response, SegmentFrame};
use csp_serve::{
    Client, Probe, ReplicationLog, Server, ServerOptions, ShardedEngine, ShutdownHandle,
};
use csp_trace::fault::{FaultyWriter, WireFault};
use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: u8 = 16;

/// Trains a deterministic engine: writer `pid` at pc 0 always sees
/// reader `15 - pid` next, so every prediction has one known-correct
/// answer.
fn trained_engine() -> Arc<ShardedEngine> {
    let engine = ShardedEngine::new("last(pid)1[direct]".parse().unwrap(), NODES as usize, 3);
    for pid in 0..NODES {
        engine.ingest_event(&SharingEvent::new(
            NodeId(pid),
            Pc(0),
            LineAddr(0),
            NodeId(0),
            SharingBitmap::singleton(NodeId(NODES - 1 - pid)),
            Some((NodeId(pid), Pc(0))),
        ));
    }
    engine.flush();
    Arc::new(engine)
}

fn probe(pid: u8) -> Probe {
    Probe::new(NodeId(pid), Pc(0), NodeId(0), LineAddr(0))
}

fn expected(pid: u8) -> SharingBitmap {
    SharingBitmap::singleton(NodeId(NODES - 1 - pid))
}

/// Sends a request through a [`FaultyWriter`] applying `fault` to the
/// frame bytes, then returns the socket for reading replies.
fn send_faulted(addr: SocketAddr, fault: WireFault, req: &Request) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut w = FaultyWriter::new(&stream, fault);
    // Faults may make the write itself fail (peer hangs up mid-dribble);
    // that is the adversary's problem, not the test's.
    let _ = wire::write_request(&mut w, req);
    let _ = (&stream).flush();
    stream
}

/// Truncation: the frame stops mid-payload and the writer hangs up. The
/// server must treat it as a mid-frame EOF and drop only that connection.
fn adversary_truncation(addr: SocketAddr) {
    let stream = send_faulted(
        addr,
        WireFault::Truncate { offset: 6 },
        &Request::Predict(probe(0)),
    );
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    // Whatever comes back (nothing, or an error on some platforms), the
    // read must terminate rather than hang.
    let mut reader = BufReader::new(&stream);
    let _ = wire::read_frame(&mut reader);
}

/// Bit flips: every flipped frame draws a typed checksum error, and a
/// connection that keeps flipping exhausts its error budget and is cut.
fn adversary_bit_flips(addr: SocketAddr, budget: u32) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reader = BufReader::new(&stream);
    let mut typed_errors = 0u32;
    let mut disconnected = false;
    for _ in 0..budget + 4 {
        let mut w = FaultyWriter::new(
            &stream,
            WireFault::Flip {
                offset: 5,
                xor: 0x20,
            },
        );
        if wire::write_request(&mut w, &Request::Predict(probe(1))).is_err() {
            disconnected = true;
            break;
        }
        match wire::read_response(&mut reader) {
            // The farewell frame before the cut may or may not arrive
            // before the close races it; both count as the disconnect.
            Ok(Response::Error(msg)) if msg.contains("budget") => {
                disconnected = true;
                break;
            }
            Ok(Response::Error(msg)) => {
                assert!(msg.contains("checksum"), "got: {msg}");
                typed_errors += 1;
            }
            Ok(other) => panic!("corrupt frame answered with {other:?}"),
            Err(_) => {
                disconnected = true;
                break;
            }
        }
    }
    assert!(typed_errors > 0, "never saw a typed checksum error");
    assert!(
        disconnected || typed_errors > budget,
        "server tolerated {typed_errors} corrupt frames without cutting the connection"
    );
    // Drain to the disconnect if it came via the final budget frame.
    while wire::read_response(&mut reader).is_ok() {}
}

/// Oversized length prefix: framing is unrecoverable, so the server must
/// send one typed error and hang up.
fn adversary_oversized(addr: SocketAddr) {
    let stream = send_faulted(
        addr,
        WireFault::OversizedLen { len: u32::MAX / 2 },
        &Request::Ping,
    );
    let mut reader = BufReader::new(&stream);
    match wire::read_response(&mut reader) {
        Ok(Response::Error(msg)) => assert!(msg.contains("limit"), "got: {msg}"),
        Ok(other) => panic!("hostile length answered with {other:?}"),
        Err(e) => panic!("expected a typed error before the disconnect: {e}"),
    }
    assert!(
        wire::read_frame(&mut reader).unwrap().is_none(),
        "server kept the connection after losing framing"
    );
}

/// Slowloris: bytes dribble in slower than the read deadline. The server
/// must cut the connection instead of pinning a handler thread.
fn adversary_slowloris(addr: SocketAddr) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut w = FaultyWriter::new(
        &stream,
        WireFault::Slowloris {
            delay_micros: 400_000, // well past the server's 150ms deadline
        },
    );
    // The server cuts us off mid-dribble; the tail of the write may fail.
    let _ = wire::write_request(&mut w, &Request::Ping);
    let mut reader = BufReader::new(&stream);
    match wire::read_response(&mut reader) {
        Ok(Response::Error(msg)) => assert!(msg.contains("deadline"), "got: {msg}"),
        Ok(other) => panic!("slowloris answered with {other:?}"),
        // The cut can also surface as a plain reset once the error frame
        // raced the close; either way the connection ended.
        Err(_) => {}
    }
}

#[test]
fn server_survives_wire_chaos_with_zero_incorrect_predictions() {
    let budget = 3u32;
    let server = Server::bind_tcp("127.0.0.1:0", trained_engine())
        .unwrap()
        .with_options(ServerOptions {
            read_timeout: Some(Duration::from_millis(150)),
            write_timeout: Some(Duration::from_secs(5)),
            error_budget: budget,
            drain_timeout: Duration::from_secs(2),
        });
    let addr = server.local_addr().unwrap();
    let shutdown = server.shutdown_handle();
    let server_thread = std::thread::spawn(move || server.run());

    // Healthy clients: hammer known-answer predictions for the whole
    // duration of the chaos. Every single answer must be exactly right.
    let stop = Arc::new(AtomicBool::new(false));
    let healthy: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect_tcp(addr).unwrap();
                client
                    .set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
                    .unwrap();
                let mut correct = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for pid in 0..NODES {
                        let got = client
                            .predict(&probe(pid))
                            .expect("healthy connection must stay served");
                        assert_eq!(got, expected(pid), "incorrect healthy prediction");
                        correct += 1;
                    }
                }
                correct
            })
        })
        .collect();

    // Chaos, two full rounds of every fault class.
    for _ in 0..2 {
        adversary_truncation(addr);
        adversary_bit_flips(addr, budget);
        adversary_oversized(addr);
        adversary_slowloris(addr);
    }

    stop.store(true, Ordering::Release);
    let mut total_correct = 0u64;
    for h in healthy {
        total_correct += h.join().expect("healthy client panicked");
    }
    assert!(
        total_correct >= 2 * NODES as u64,
        "healthy clients barely ran: {total_correct} predictions"
    );

    // The server is still accepting, still correct, and never had to
    // restart a shard over any of it (wire faults die at the framing
    // layer, far from the predictor state).
    let mut client = Client::connect_tcp(addr).unwrap();
    client.ping().unwrap();
    assert_eq!(client.predict(&probe(7)).unwrap(), expected(7));
    let stats = client.stats().unwrap();
    assert_eq!(stats.restarts, 0, "wire chaos must not reach shard state");
    assert_eq!(stats.updates, NODES as u64);
    drop(client);

    // And it still shuts down gracefully afterwards.
    shutdown.shutdown();
    let result = server_thread.join().expect("server thread");
    assert!(result.is_ok(), "shutdown after chaos errored: {result:?}");
}

#[test]
fn interleaved_chaos_and_writes_keep_state_exact() {
    // Adversarial frames interleaved with real ingest through a healthy
    // connection: the table must end exactly where a clean run ends.
    let engine = trained_engine();
    let server = Server::bind_tcp("127.0.0.1:0", Arc::clone(&engine))
        .unwrap()
        .with_options(ServerOptions {
            read_timeout: Some(Duration::from_millis(150)),
            error_budget: 2,
            ..ServerOptions::default()
        });
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    for round in 0..3 {
        adversary_bit_flips(addr, 2);
        adversary_oversized(addr);
        // Healthy traffic between the attacks.
        let mut client = Client::connect_tcp(addr).unwrap();
        for pid in 0..NODES {
            assert_eq!(
                client.predict(&probe(pid)).unwrap(),
                expected(pid),
                "round {round}"
            );
        }
    }
    assert_eq!(engine.stats().total_restarts(), 0);
}

/// The load generator's ledger stays clean against a healthy server even
/// while chaos runs — robustness accounting must not invent failures.
#[test]
fn load_generator_ledger_is_clean_under_parallel_chaos() {
    let server = Server::bind_tcp("127.0.0.1:0", trained_engine())
        .unwrap()
        .with_options(ServerOptions {
            read_timeout: Some(Duration::from_millis(150)),
            error_budget: 3,
            ..ServerOptions::default()
        });
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    let chaos = std::thread::spawn(move || {
        adversary_truncation(addr);
        adversary_oversized(addr);
        adversary_bit_flips(addr, 3);
    });
    let report = csp_serve::run_load(
        addr,
        &csp_serve::LoadOptions {
            batch: 64,
            frames: 50,
            nodes: NODES as usize,
            ..Default::default()
        },
    )
    .unwrap();
    chaos.join().unwrap();
    assert_eq!(report.timeouts, 0, "{report}");
    assert_eq!(report.disconnects, 0, "{report}");
    assert_eq!(report.probes, 64 * 50);

    let mut writer = BufWriter::new(TcpStream::connect(addr).unwrap());
    // One last well-formed frame proves the listener is still alive.
    wire::write_request(&mut writer, &Request::Ping).unwrap();
    writer.flush().unwrap();
}

/// A torn journal segment from a hostile (or disk-corrupted) leader: the
/// follower applies the valid prefix, rejects the bit-flipped frame at
/// the checksum, keeps serving stale-but-consistent state, reconnects,
/// and resumes from its durable offset — never applying a corrupt byte.
#[test]
fn follower_survives_torn_segment_and_resumes_from_offset() {
    let engine = Arc::new(ShardedEngine::new(
        "last(pid)1[direct]".parse().unwrap(),
        NODES as usize,
        2,
    ));
    engine.mark_follower();
    let fp = replication::fingerprint(engine.scheme(), engine.nodes());
    engine
        .attach_replication(ReplicationLog::in_memory(fp))
        .unwrap();
    let ops: Vec<ReplOp> = (0..NODES as u64)
        .map(|key| ReplOp::Update {
            key,
            feedback: SharingBitmap::singleton(NodeId(NODES - 1 - key as u8)),
        })
        .collect();

    // The fake leader: first connection sends 8 good ops then a
    // bit-flipped segment; second connection must see a Subscribe
    // resuming at offset 8 and serves the rest.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let leader_ops = ops.clone();
    let leader = std::thread::spawn(move || {
        // Connection 1: valid prefix, then the tear.
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        match wire::read_request(&mut reader).unwrap() {
            Request::Subscribe {
                fingerprint,
                epoch: _,
                from,
            } => {
                assert_eq!(fingerprint, fp);
                assert_eq!(from, 0, "first subscribe must start at bootstrap");
            }
            other => panic!("expected Subscribe, got {other:?}"),
        }
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        wire::write_response(
            &mut w,
            &Response::JournalSegment(SegmentFrame {
                fingerprint: fp,
                epoch: 1,
                start: 0,
                head: leader_ops.len() as u64,
                lease_ms: 0,
                ops: leader_ops[..8].to_vec(),
            }),
        )
        .unwrap();
        w.flush().unwrap();
        // The tear: a continuation segment whose bytes were flipped in
        // flight. The checksum must kill it before a single op applies.
        let mut fw = FaultyWriter::new(
            &stream,
            WireFault::Flip {
                offset: 30,
                xor: 0x40,
            },
        );
        let _ = wire::write_response(
            &mut fw,
            &Response::JournalSegment(SegmentFrame {
                fingerprint: fp,
                epoch: 1,
                start: 8,
                head: leader_ops.len() as u64,
                lease_ms: 0,
                ops: leader_ops[8..].to_vec(),
            }),
        );
        let _ = (&stream).flush();
        drop(stream);

        // Connection 2: the reconnect. It must resume exactly at 8.
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        match wire::read_request(&mut reader).unwrap() {
            Request::Subscribe {
                fingerprint,
                epoch: _,
                from,
            } => {
                assert_eq!(fingerprint, fp);
                assert_eq!(from, 8, "reconnect must resume from the durable offset");
            }
            other => panic!("expected resumed Subscribe, got {other:?}"),
        }
        let mut w = BufWriter::new(stream.try_clone().unwrap());
        wire::write_response(
            &mut w,
            &Response::JournalSegment(SegmentFrame {
                fingerprint: fp,
                epoch: 1,
                start: 8,
                head: leader_ops.len() as u64,
                lease_ms: 0,
                ops: leader_ops[8..].to_vec(),
            }),
        )
        .unwrap();
        w.flush().unwrap();
        // Hold the connection with heartbeats until the follower leaves.
        loop {
            let beat = Response::JournalSegment(SegmentFrame {
                fingerprint: fp,
                epoch: 1,
                start: leader_ops.len() as u64,
                head: leader_ops.len() as u64,
                lease_ms: 0,
                ops: Vec::new(),
            });
            if wire::write_response(&mut w, &beat)
                .and_then(|()| w.flush())
                .is_err()
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    });

    let status = ReplicaStatus::new(0);
    let shutdown = ShutdownHandle::new();
    let f_engine = Arc::clone(&engine);
    let f_status = Arc::clone(&status);
    let f_shutdown = shutdown.clone();
    let follower = std::thread::spawn(move || {
        run_follower(
            &f_engine,
            move || Some(addr.to_string()),
            &f_status,
            &f_shutdown,
            &FollowerOptions {
                backoff_base: Duration::from_millis(10),
                backoff_max: Duration::from_millis(100),
                read_timeout: Duration::from_secs(2),
                ..FollowerOptions::default()
            },
        )
    });

    let deadline = Instant::now() + Duration::from_secs(30);
    while status.applied() < NODES as u64 {
        assert!(
            Instant::now() < deadline,
            "follower stuck at offset {} (reconnects {})",
            status.applied(),
            status.reconnects()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The tear forced exactly one reconnect cycle, no divergence, and the
    // applied state is what an untorn stream would have produced.
    assert!(status.reconnects() >= 1, "the tear never forced a redial");
    assert!(!status.is_diverged(), "a checksum tear is not divergence");
    let stats = engine.stats();
    assert_eq!(stats.updates, NODES as u64, "corrupt ops leaked into state");

    shutdown.shutdown();
    follower.join().unwrap().unwrap();
    leader.join().unwrap();
}

/// A subscriber that never reads: the leader's write buffer to it fills,
/// the write deadline cuts the laggard, and neither healthy queries nor
/// the leader's own ingest path stall behind it.
#[test]
fn slow_subscriber_is_cut_without_stalling_the_leader() {
    let engine = trained_engine();
    let fp = replication::fingerprint(engine.scheme(), engine.nodes());
    engine
        .attach_replication(ReplicationLog::in_memory(fp))
        .unwrap();
    let server = Server::bind_tcp("127.0.0.1:0", Arc::clone(&engine))
        .unwrap()
        .with_options(ServerOptions {
            read_timeout: Some(Duration::from_millis(150)),
            // Tight write deadline: a subscriber that stops draining is
            // cut in well under a second.
            write_timeout: Some(Duration::from_millis(200)),
            ..ServerOptions::default()
        });
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    // Subscribe, then never read a byte.
    let laggard = TcpStream::connect(addr).unwrap();
    let mut w = BufWriter::new(laggard.try_clone().unwrap());
    wire::write_request(
        &mut w,
        &Request::Subscribe {
            fingerprint: fp,
            epoch: 0,
            from: 0,
        },
    )
    .unwrap();
    w.flush().unwrap();

    // Meanwhile the leader keeps ingesting — far more bytes than the
    // laggard's socket buffers can absorb — and healthy clients keep
    // getting exact answers.
    // ~35MB of journal — far beyond what the kernel will buffer for a
    // socket nobody drains, so the stream writer must hit its deadline.
    let ops: Vec<ReplOp> = (0..32_768u64)
        .map(|i| ReplOp::Update {
            key: i % NODES as u64,
            feedback: SharingBitmap::singleton(NodeId((i % NODES as u64) as u8)),
        })
        .collect();
    let mut client = Client::connect_tcp(addr).unwrap();
    client
        .set_timeouts(Some(Duration::from_secs(5)), Some(Duration::from_secs(5)))
        .unwrap();
    let start = Instant::now();
    for _ in 0..64 {
        engine.ingest_replicated(0, &ops).unwrap();
        client.ping().unwrap();
    }
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "leader ingest stalled behind the laggard: {:?}",
        start.elapsed()
    );

    // With nobody draining the laggard, the stream writer is now blocked
    // against full socket buffers; its 200ms deadline cuts the handler.
    // The server's own connection gauge proves it: only the healthy
    // client remains. (Draining instead would relieve the backpressure
    // and keep the stream alive — the cut requires sustained stall.)
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = client.metrics().unwrap();
        let active = csp_obs::parse_text(&text)
            .into_iter()
            .find(|s| s.name == "csp_connections_active")
            .and_then(|s| s.value_i64())
            .unwrap_or(-1);
        if active == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "laggard connection never cut; {active} connections still active"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Draining what the kernel already buffered now ends in EOF (or a
    // reset), not a live stream.
    laggard
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut drained = laggard;
    let mut sink = [0u8; 64 * 1024];
    loop {
        match drained.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    // And the server is still fully alive for everyone else.
    let mut client = Client::connect_tcp(addr).unwrap();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.restarts, 0, "backpressure must not reach shard state");
}
