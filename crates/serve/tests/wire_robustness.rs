//! Decode-path robustness for the wire protocol: every message type must
//! reject truncated payloads, every frame must reject truncation and
//! single-byte corruption, and `StatsReply` must round-trip for arbitrary
//! field values (proptest).

use csp_metrics::ConfusionMatrix;
use csp_serve::replication::ReplOp;
use csp_serve::wire::{
    self, read_frame, FrameRead, Request, Response, SegmentFrame, StatsReply, MAX_PAYLOAD,
};
use csp_serve::Probe;
use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap};
use proptest::prelude::*;
use std::io;

/// Scheme-notation-shaped ASCII strings of bounded length (the vendored
/// proptest has no regex strategies).
fn scheme_strings() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (b'a'..=b'z').prop_map(|c| c as char),
            (b'0'..=b'9').prop_map(|c| c as char),
            prop_oneof![Just('('), Just(')'), Just('+'), Just('['), Just(']')],
        ],
        0..40,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn probe(seed: u64) -> Probe {
    Probe::new(
        NodeId((seed % 16) as u8),
        Pc((seed * 7) as u32),
        NodeId(((seed + 3) % 16) as u8),
        LineAddr(seed * 1_000_003),
    )
}

fn stats_reply() -> StatsReply {
    StatsReply {
        scheme: "union(pid+pc8)2[forwarded]".to_string(),
        nodes: 32,
        shards: 6,
        updates: 1_000_001,
        scored: 999_999,
        queries: 42,
        entries: 77,
        restarts: 3,
        confusion: ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        },
    }
}

fn repl_ops(n: u64) -> Vec<ReplOp> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                ReplOp::Update {
                    key: i * 17,
                    feedback: SharingBitmap::from_bits(1 << (i % 64)),
                }
            } else {
                ReplOp::Score {
                    key: i * 31,
                    actual: SharingBitmap::from_bits(i),
                }
            }
        })
        .collect()
}

/// One payload per request tag (`T_PING`, `T_PREDICT`,
/// `T_PREDICT_BATCH`, `T_STATS`, `T_INGEST`, `T_SUBSCRIBE`,
/// `T_PROMOTE`).
fn request_payloads() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("ping", wire::encode_request(&Request::Ping)),
        ("predict", wire::encode_request(&Request::Predict(probe(1)))),
        (
            "predict-batch",
            wire::encode_request(&Request::PredictBatch((0..17).map(probe).collect())),
        ),
        ("stats", wire::encode_request(&Request::Stats)),
        (
            "ingest",
            wire::encode_request(&Request::Ingest {
                fingerprint: 0xDEAD_BEEF,
                epoch: 3,
                ops: repl_ops(11),
            }),
        ),
        (
            "subscribe",
            wire::encode_request(&Request::Subscribe {
                fingerprint: 0xDEAD_BEEF,
                epoch: 2,
                from: 0x0123_4567_89AB_CDEF,
            }),
        ),
        (
            "promote",
            wire::encode_request(&Request::Promote {
                fingerprint: 0xDEAD_BEEF,
                min_epoch: 0x0011_2233_4455_6677,
            }),
        ),
    ]
}

/// One payload per response tag (`T_PONG`, `T_PREDICTION`,
/// `T_PREDICTION_BATCH`, `T_STATS_SNAPSHOT`, `T_ERROR`,
/// `T_INGEST_ACK`, `T_JOURNAL_SEGMENT`, `T_PROMOTED`).
fn response_payloads() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("pong", wire::encode_response(&Response::Pong)),
        (
            "ingest-ack",
            wire::encode_response(&Response::IngestAck {
                head: 0xFEED_F00D_1234_5678,
            }),
        ),
        (
            "journal-segment",
            wire::encode_response(&Response::JournalSegment(SegmentFrame {
                fingerprint: 0xCAFE_BABE,
                epoch: 2,
                start: 100,
                head: 113,
                lease_ms: 10_000,
                ops: repl_ops(13),
            })),
        ),
        (
            "journal-heartbeat",
            wire::encode_response(&Response::JournalSegment(SegmentFrame {
                fingerprint: 0xCAFE_BABE,
                epoch: u64::MAX,
                start: 113,
                head: 113,
                lease_ms: 0,
                ops: Vec::new(),
            })),
        ),
        (
            "promoted",
            wire::encode_response(&Response::Promoted {
                epoch: 7,
                head: 0xFFFF_FFFF_0000_0001,
            }),
        ),
        (
            "prediction",
            wire::encode_response(&Response::Prediction(SharingBitmap::from_bits(0xF00D))),
        ),
        (
            "prediction-batch",
            wire::encode_response(&Response::PredictionBatch(
                (0..9).map(|i| SharingBitmap::from_bits(1 << i)).collect(),
            )),
        ),
        (
            "stats",
            wire::encode_response(&Response::Stats(stats_reply())),
        ),
        (
            "error",
            wire::encode_response(&Response::Error("no".to_string())),
        ),
    ]
}

#[test]
fn every_request_tag_rejects_every_truncation() {
    for (name, payload) in request_payloads() {
        assert!(
            wire::decode_request(&payload).is_ok(),
            "{name}: untruncated payload must decode"
        );
        for cut in 0..payload.len() {
            assert!(
                wire::decode_request(&payload[..cut]).is_err(),
                "{name}: truncation to {cut}/{} bytes must be rejected",
                payload.len()
            );
        }
    }
}

#[test]
fn every_response_tag_rejects_every_truncation() {
    for (name, payload) in response_payloads() {
        assert!(
            wire::decode_response(&payload).is_ok(),
            "{name}: untruncated payload must decode"
        );
        for cut in 0..payload.len() {
            assert!(
                wire::decode_response(&payload[..cut]).is_err(),
                "{name}: truncation to {cut}/{} bytes must be rejected",
                payload.len()
            );
        }
    }
}

#[test]
fn every_request_tag_rejects_trailing_garbage() {
    for (name, mut payload) in request_payloads() {
        payload.push(0xAA);
        assert!(
            wire::decode_request(&payload).is_err(),
            "{name}: a trailing byte must be rejected"
        );
    }
}

#[test]
fn every_frame_truncation_is_a_clean_transport_error() {
    for (name, payload) in request_payloads().into_iter().chain(response_payloads()) {
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &payload).unwrap();
        // Cut 0 bytes is a clean boundary EOF (None); any other cut is a
        // mid-frame EOF, never a panic and never a bogus frame.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        for cut in 1..frame.len() {
            let err = read_frame(&mut &frame[..cut]).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "{name}: cut at {cut}/{} gave {err}",
                frame.len()
            );
        }
    }
}

#[test]
fn every_single_byte_frame_corruption_is_detected() {
    for (name, payload) in request_payloads().into_iter().chain(response_payloads()) {
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &payload).unwrap();
        for i in 0..frame.len() {
            let mut hurt = frame.clone();
            hurt[i] ^= 0x10;
            // The read may fail at the framing layer (checksum, length,
            // short stream) or the decode layer (bad tag/body) — but it
            // must fail somewhere.
            let survived = match read_frame(&mut hurt.as_slice()) {
                Err(_) | Ok(None) => false,
                Ok(Some(p)) => {
                    wire::decode_request(&p).is_ok() || wire::decode_response(&p).is_ok()
                }
            };
            assert!(
                !survived,
                "{name}: flipping byte {i}/{} went undetected",
                frame.len()
            );
        }
    }
}

#[test]
fn oversized_length_prefix_is_typed_and_never_allocates() {
    for len in [MAX_PAYLOAD as u32 + 1, u32::MAX / 2, u32::MAX] {
        let bytes = len.to_le_bytes();
        let mut rest = &bytes[1..];
        match wire::read_frame_after_first(&mut rest, bytes[0]).unwrap() {
            FrameRead::Oversized { len: got } => assert_eq!(got, len),
            other => panic!("length {len} gave {other:?}"),
        }
    }
    // The largest *legal* length with a short stream is EOF, not Oversized.
    let bytes = (MAX_PAYLOAD as u32).to_le_bytes();
    let mut rest = &bytes[1..];
    let err = wire::read_frame_after_first(&mut rest, bytes[0]).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
}

#[test]
fn bad_checksum_is_typed_with_both_crcs() {
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &wire::encode_request(&Request::Ping)).unwrap();
    let n = frame.len();
    frame[n - 1] ^= 0xFF;
    let mut rest = &frame[1..];
    match wire::read_frame_after_first(&mut rest, frame[0]).unwrap() {
        FrameRead::BadChecksum { stored, computed } => assert_ne!(stored, computed),
        other => panic!("got {other:?}"),
    }
}

/// A hostile operation count in an `Ingest` header — far more ops than
/// the body carries, or than the cap allows — must be rejected by the
/// length/cap validation before any allocation happens.
#[test]
fn hostile_ingest_op_count_is_rejected_without_allocating() {
    let mut payload = wire::encode_request(&Request::Ingest {
        fingerprint: 7,
        epoch: 1,
        ops: repl_ops(2),
    });
    // Payload layout: tag(1) | fingerprint(4) | epoch(8) | count(4) | ops…
    for hostile in [3u32, 1 << 20, u32::MAX] {
        payload[13..17].copy_from_slice(&hostile.to_le_bytes());
        assert!(
            wire::decode_request(&payload).is_err(),
            "count {hostile} over a 2-op body must be rejected"
        );
    }
    // Same attack on the segment stream's count field: tag(1) |
    // fingerprint(4) | epoch(8) | start(8) | head(8) | lease_ms(4) |
    // count(4) | ops…
    let mut payload = wire::encode_response(&Response::JournalSegment(SegmentFrame {
        fingerprint: 7,
        epoch: 1,
        start: 0,
        head: 2,
        lease_ms: 1000,
        ops: repl_ops(2),
    }));
    for hostile in [3u32, 1 << 20, u32::MAX] {
        payload[33..37].copy_from_slice(&hostile.to_le_bytes());
        assert!(
            wire::decode_response(&payload).is_err(),
            "segment count {hostile} over a 2-op body must be rejected"
        );
    }
}

/// Operations whose tag byte is neither Update nor Score must fail the
/// decode, wherever they sit in the batch.
#[test]
fn unknown_repl_op_tags_are_rejected() {
    let payload = wire::encode_request(&Request::Ingest {
        fingerprint: 7,
        epoch: 1,
        ops: repl_ops(3),
    });
    assert!(wire::decode_request(&payload).is_ok(), "baseline decodes");
    let ops_at = 17;
    for bad_tag in [0u8, 3, 0xFF] {
        for op in 0..3 {
            let mut hurt = payload.clone();
            hurt[ops_at + op * 17] = bad_tag;
            assert!(
                wire::decode_request(&hurt).is_err(),
                "op tag {bad_tag:#04X} at op {op} must be rejected"
            );
        }
    }
}

proptest! {
    /// Arbitrary operation batches survive the Ingest request round trip
    /// bit-for-bit.
    #[test]
    fn ingest_round_trips(
        fingerprint in any::<u32>(),
        epoch in any::<u64>(),
        raw in proptest::collection::vec((any::<bool>(), any::<u64>(), any::<u64>()), 0..64),
    ) {
        let ops: Vec<ReplOp> = raw
            .into_iter()
            .map(|(update, key, bits)| if update {
                ReplOp::Update { key, feedback: SharingBitmap::from_bits(bits) }
            } else {
                ReplOp::Score { key, actual: SharingBitmap::from_bits(bits) }
            })
            .collect();
        let mut frame = Vec::new();
        wire::write_request(
            &mut frame,
            &Request::Ingest { fingerprint, epoch, ops: ops.clone() },
        ).unwrap();
        let back = wire::read_request(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(back, Request::Ingest { fingerprint, epoch, ops });
    }

    /// Arbitrary journal segments survive the response round trip
    /// bit-for-bit, heartbeats included.
    #[test]
    fn journal_segment_round_trips(
        fingerprint in any::<u32>(),
        epoch in any::<u64>(),
        start in any::<u64>(),
        lead in any::<u32>(),
        lease_ms in any::<u32>(),
        raw in proptest::collection::vec((any::<bool>(), any::<u64>(), any::<u64>()), 0..64),
    ) {
        let ops: Vec<ReplOp> = raw
            .into_iter()
            .map(|(update, key, bits)| if update {
                ReplOp::Update { key, feedback: SharingBitmap::from_bits(bits) }
            } else {
                ReplOp::Score { key, actual: SharingBitmap::from_bits(bits) }
            })
            .collect();
        let seg = SegmentFrame {
            fingerprint,
            epoch,
            start,
            head: start.saturating_add(ops.len() as u64).saturating_add(u64::from(lead)),
            lease_ms,
            ops,
        };
        let mut frame = Vec::new();
        wire::write_response(&mut frame, &Response::JournalSegment(seg.clone())).unwrap();
        let back = wire::read_response(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(back, Response::JournalSegment(seg));
    }

    /// Subscribe round-trips for arbitrary fingerprints, epochs, and
    /// offsets.
    #[test]
    fn subscribe_round_trips(
        fingerprint in any::<u32>(),
        epoch in any::<u64>(),
        from in any::<u64>(),
    ) {
        let mut frame = Vec::new();
        wire::write_request(
            &mut frame,
            &Request::Subscribe { fingerprint, epoch, from },
        ).unwrap();
        let back = wire::read_request(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(back, Request::Subscribe { fingerprint, epoch, from });
    }

    /// Promote and Promoted round-trip for arbitrary epochs — hostile
    /// (maximal) epochs included, since a forged term must survive the
    /// wire intact to be *refused* at the fencing layer, not mangled
    /// into an accepted one.
    #[test]
    fn promote_round_trips(
        fingerprint in any::<u32>(),
        min_epoch in any::<u64>(),
        head in any::<u64>(),
    ) {
        let mut frame = Vec::new();
        wire::write_request(
            &mut frame,
            &Request::Promote { fingerprint, min_epoch },
        ).unwrap();
        let back = wire::read_request(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(back, Request::Promote { fingerprint, min_epoch });

        let mut frame = Vec::new();
        wire::write_response(
            &mut frame,
            &Response::Promoted { epoch: min_epoch, head },
        ).unwrap();
        let back = wire::read_response(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(back, Response::Promoted { epoch: min_epoch, head });
    }

    #[test]
    fn stats_reply_round_trips(
        scheme in scheme_strings(),
        nodes in any::<u8>(),
        shards in any::<u16>(),
        updates in any::<u64>(),
        scored in any::<u64>(),
        queries in any::<u64>(),
        entries in any::<u64>(),
        restarts in any::<u64>(),
        tp in any::<u64>(),
        fp in any::<u64>(),
        tn in any::<u64>(),
        fn_ in any::<u64>(),
    ) {
        let reply = StatsReply {
            scheme,
            nodes,
            shards,
            updates,
            scored,
            queries,
            entries,
            restarts,
            confusion: ConfusionMatrix { tp, fp, tn, fn_ },
        };
        let mut frame = Vec::new();
        wire::write_response(&mut frame, &Response::Stats(reply.clone())).unwrap();
        let back = wire::read_response(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(back, Response::Stats(reply));
    }

    #[test]
    fn random_bytes_never_panic_the_decoders(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode_request(&payload);
        let _ = wire::decode_response(&payload);
        let mut stream = payload.as_slice();
        let _ = read_frame(&mut stream);
    }
}
