//! Decode-path robustness for the wire protocol: every message type must
//! reject truncated payloads, every frame must reject truncation and
//! single-byte corruption, and `StatsReply` must round-trip for arbitrary
//! field values (proptest).

use csp_metrics::ConfusionMatrix;
use csp_serve::wire::{self, read_frame, FrameRead, Request, Response, StatsReply, MAX_PAYLOAD};
use csp_serve::Probe;
use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap};
use proptest::prelude::*;
use std::io;

/// Scheme-notation-shaped ASCII strings of bounded length (the vendored
/// proptest has no regex strategies).
fn scheme_strings() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            (b'a'..=b'z').prop_map(|c| c as char),
            (b'0'..=b'9').prop_map(|c| c as char),
            prop_oneof![Just('('), Just(')'), Just('+'), Just('['), Just(']')],
        ],
        0..40,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

fn probe(seed: u64) -> Probe {
    Probe::new(
        NodeId((seed % 16) as u8),
        Pc((seed * 7) as u32),
        NodeId(((seed + 3) % 16) as u8),
        LineAddr(seed * 1_000_003),
    )
}

fn stats_reply() -> StatsReply {
    StatsReply {
        scheme: "union(pid+pc8)2[forwarded]".to_string(),
        nodes: 32,
        shards: 6,
        updates: 1_000_001,
        scored: 999_999,
        queries: 42,
        entries: 77,
        restarts: 3,
        confusion: ConfusionMatrix {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        },
    }
}

/// One payload per request tag (`T_PING`, `T_PREDICT`,
/// `T_PREDICT_BATCH`, `T_STATS`).
fn request_payloads() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("ping", wire::encode_request(&Request::Ping)),
        ("predict", wire::encode_request(&Request::Predict(probe(1)))),
        (
            "predict-batch",
            wire::encode_request(&Request::PredictBatch((0..17).map(probe).collect())),
        ),
        ("stats", wire::encode_request(&Request::Stats)),
    ]
}

/// One payload per response tag (`T_PONG`, `T_PREDICTION`,
/// `T_PREDICTION_BATCH`, `T_STATS_SNAPSHOT`, `T_ERROR`).
fn response_payloads() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("pong", wire::encode_response(&Response::Pong)),
        (
            "prediction",
            wire::encode_response(&Response::Prediction(SharingBitmap::from_bits(0xF00D))),
        ),
        (
            "prediction-batch",
            wire::encode_response(&Response::PredictionBatch(
                (0..9).map(|i| SharingBitmap::from_bits(1 << i)).collect(),
            )),
        ),
        (
            "stats",
            wire::encode_response(&Response::Stats(stats_reply())),
        ),
        (
            "error",
            wire::encode_response(&Response::Error("no".to_string())),
        ),
    ]
}

#[test]
fn every_request_tag_rejects_every_truncation() {
    for (name, payload) in request_payloads() {
        assert!(
            wire::decode_request(&payload).is_ok(),
            "{name}: untruncated payload must decode"
        );
        for cut in 0..payload.len() {
            assert!(
                wire::decode_request(&payload[..cut]).is_err(),
                "{name}: truncation to {cut}/{} bytes must be rejected",
                payload.len()
            );
        }
    }
}

#[test]
fn every_response_tag_rejects_every_truncation() {
    for (name, payload) in response_payloads() {
        assert!(
            wire::decode_response(&payload).is_ok(),
            "{name}: untruncated payload must decode"
        );
        for cut in 0..payload.len() {
            assert!(
                wire::decode_response(&payload[..cut]).is_err(),
                "{name}: truncation to {cut}/{} bytes must be rejected",
                payload.len()
            );
        }
    }
}

#[test]
fn every_request_tag_rejects_trailing_garbage() {
    for (name, mut payload) in request_payloads() {
        payload.push(0xAA);
        assert!(
            wire::decode_request(&payload).is_err(),
            "{name}: a trailing byte must be rejected"
        );
    }
}

#[test]
fn every_frame_truncation_is_a_clean_transport_error() {
    for (name, payload) in request_payloads().into_iter().chain(response_payloads()) {
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &payload).unwrap();
        // Cut 0 bytes is a clean boundary EOF (None); any other cut is a
        // mid-frame EOF, never a panic and never a bogus frame.
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        for cut in 1..frame.len() {
            let err = read_frame(&mut &frame[..cut]).unwrap_err();
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "{name}: cut at {cut}/{} gave {err}",
                frame.len()
            );
        }
    }
}

#[test]
fn every_single_byte_frame_corruption_is_detected() {
    for (name, payload) in request_payloads().into_iter().chain(response_payloads()) {
        let mut frame = Vec::new();
        wire::write_frame(&mut frame, &payload).unwrap();
        for i in 0..frame.len() {
            let mut hurt = frame.clone();
            hurt[i] ^= 0x10;
            // The read may fail at the framing layer (checksum, length,
            // short stream) or the decode layer (bad tag/body) — but it
            // must fail somewhere.
            let survived = match read_frame(&mut hurt.as_slice()) {
                Err(_) | Ok(None) => false,
                Ok(Some(p)) => {
                    wire::decode_request(&p).is_ok() || wire::decode_response(&p).is_ok()
                }
            };
            assert!(
                !survived,
                "{name}: flipping byte {i}/{} went undetected",
                frame.len()
            );
        }
    }
}

#[test]
fn oversized_length_prefix_is_typed_and_never_allocates() {
    for len in [MAX_PAYLOAD as u32 + 1, u32::MAX / 2, u32::MAX] {
        let bytes = len.to_le_bytes();
        let mut rest = &bytes[1..];
        match wire::read_frame_after_first(&mut rest, bytes[0]).unwrap() {
            FrameRead::Oversized { len: got } => assert_eq!(got, len),
            other => panic!("length {len} gave {other:?}"),
        }
    }
    // The largest *legal* length with a short stream is EOF, not Oversized.
    let bytes = (MAX_PAYLOAD as u32).to_le_bytes();
    let mut rest = &bytes[1..];
    let err = wire::read_frame_after_first(&mut rest, bytes[0]).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
}

#[test]
fn bad_checksum_is_typed_with_both_crcs() {
    let mut frame = Vec::new();
    wire::write_frame(&mut frame, &wire::encode_request(&Request::Ping)).unwrap();
    let n = frame.len();
    frame[n - 1] ^= 0xFF;
    let mut rest = &frame[1..];
    match wire::read_frame_after_first(&mut rest, frame[0]).unwrap() {
        FrameRead::BadChecksum { stored, computed } => assert_ne!(stored, computed),
        other => panic!("got {other:?}"),
    }
}

proptest! {
    #[test]
    fn stats_reply_round_trips(
        scheme in scheme_strings(),
        nodes in any::<u8>(),
        shards in any::<u16>(),
        updates in any::<u64>(),
        scored in any::<u64>(),
        queries in any::<u64>(),
        entries in any::<u64>(),
        restarts in any::<u64>(),
        tp in any::<u64>(),
        fp in any::<u64>(),
        tn in any::<u64>(),
        fn_ in any::<u64>(),
    ) {
        let reply = StatsReply {
            scheme,
            nodes,
            shards,
            updates,
            scored,
            queries,
            entries,
            restarts,
            confusion: ConfusionMatrix { tp, fp, tn, fn_ },
        };
        let mut frame = Vec::new();
        wire::write_response(&mut frame, &Response::Stats(reply.clone())).unwrap();
        let back = wire::read_response(&mut frame.as_slice()).unwrap();
        prop_assert_eq!(back, Response::Stats(reply));
    }

    #[test]
    fn random_bytes_never_panic_the_decoders(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = wire::decode_request(&payload);
        let _ = wire::decode_response(&payload);
        let mut stream = payload.as_slice();
        let _ = read_frame(&mut stream);
    }
}
