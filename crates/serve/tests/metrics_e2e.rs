//! End-to-end proof of the telemetry pipeline: drive a live server with
//! the load generator, fetch the `Metrics` wire frame, and hold the
//! registry to *exact* agreement with the client's own accounting — the
//! per-shard query counters (and the service-time histogram counts,
//! which the shard worker records once per answered probe) must sum to
//! precisely the number of probes the client got answers for.

use csp_obs::{parse_text, sum_counter, Sample};
use csp_serve::{run_load, Client, LoadOptions, Server, ShardedEngine};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const SCHEME: &str = "last(pid+pc8)1[direct]";

fn load_opts() -> LoadOptions {
    LoadOptions {
        batch: 64,
        frames: 50,
        nodes: 16,
        timeout: Some(Duration::from_secs(10)),
        ..LoadOptions::default()
    }
}

/// Sums one histogram family's `_count` samples across all shards.
fn sum_histogram_count(samples: &[Sample], name: &str) -> u64 {
    let count_name = format!("{name}_count");
    samples
        .iter()
        .filter(|s| s.name == count_name)
        .filter_map(Sample::value_u64)
        .sum()
}

#[test]
fn metrics_counters_match_load_exactly() {
    let engine = Arc::new(ShardedEngine::new(SCHEME.parse().unwrap(), 16, 4));
    let server = Server::bind_tcp("127.0.0.1:0", Arc::clone(&engine)).unwrap();
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run());

    let opts = load_opts();
    let report = run_load(addr, &opts).unwrap();
    assert_eq!(report.timeouts, 0, "loopback load must not time out");
    assert_eq!(report.disconnects, 0);

    let mut client = Client::connect_tcp(addr).unwrap();
    let text = client.metrics().unwrap();
    let samples = parse_text(&text);

    // run_load sends one warm-up frame before the measured ones; every
    // answered probe must appear in the shard query counters, exactly.
    let expected = report.probes + opts.batch as u64;
    assert_eq!(
        sum_counter(&samples, "csp_shard_queries_total"),
        expected,
        "query counters disagree with the client's answered-probe count"
    );
    // The shard worker records query service time once per answered
    // probe, so the histogram count tracks the counter exactly.
    assert_eq!(
        sum_histogram_count(&samples, "csp_shard_query_service_ns"),
        expected
    );
    // And the registry agrees with the engine's own merged stats.
    assert_eq!(engine.stats().queries, expected);

    // The wire-level frame counters saw the ping, the warm-up + measured
    // batches, and this very metrics request.
    let frames_of = |t: &str| {
        samples
            .iter()
            .filter(|s| s.name == "csp_wire_frames_total" && s.label("type") == Some(t))
            .filter_map(Sample::value_u64)
            .sum::<u64>()
    };
    assert_eq!(frames_of("predict_batch"), opts.frames as u64 + 1);
    assert_eq!(frames_of("ping"), 1);
    assert!(frames_of("metrics") >= 1);

    // Structural sanity of the exposition itself.
    assert!(text.contains("# TYPE csp_shard_query_service_ns histogram"));
    assert!(text.contains("# TYPE csp_connections_total counter"));
    assert!(sum_counter(&samples, "csp_connections_total") >= 2);
}

/// Kills the child on drop so a failing assertion never leaks a server.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn metrics_subcommand_scrapes_a_live_server() {
    let mut child = ChildGuard(
        Command::new(env!("CARGO_BIN_EXE_csp-served"))
            .args([
                "serve",
                "--scheme",
                SCHEME,
                "--listen",
                "127.0.0.1:0",
                "--stats-every",
                "0",
            ])
            .stdin(Stdio::piped())
            .stderr(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn csp-served serve"),
    );

    // The server logs "serving <scheme> on <addr> (...)" once bound.
    let stderr = child.0.stderr.take().unwrap();
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before binding")
            .expect("read server stderr");
        if let Some(rest) = line.split(" on ").nth(1) {
            if line.starts_with("serving ") {
                break rest.split(' ').next().unwrap().to_string();
            }
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    let drain = std::thread::spawn(move || for _ in lines {});

    let opts = load_opts();
    let report = run_load(addr.as_str(), &opts).expect("load against the real binary");
    assert_eq!(report.timeouts + report.disconnects, 0);

    let scrape = Command::new(env!("CARGO_BIN_EXE_csp-served"))
        .args(["metrics", "--addr", &addr])
        .output()
        .expect("run csp-served metrics");
    assert!(
        scrape.status.success(),
        "metrics subcommand failed: {}",
        String::from_utf8_lossy(&scrape.stderr)
    );
    let samples = parse_text(&String::from_utf8(scrape.stdout).expect("utf8 scrape"));
    assert_eq!(
        sum_counter(&samples, "csp_shard_queries_total"),
        report.probes + opts.batch as u64
    );

    // Closing stdin asks for a graceful drain; the exit must be clean.
    drop(child.0.stdin.take());
    let status = child.0.wait().expect("wait for csp-served");
    assert!(status.success(), "server exited with {status}");
    drain.join().unwrap();
}
