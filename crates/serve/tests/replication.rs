//! The replication proof, end to end through the real binary: a leader
//! journals every mutation, a follower bootstraps from a shipped
//! snapshot and streams the journal live — and the follower's screening
//! statistics must be *bit-identical* to the leader's and to the offline
//! engine's, across every benchmark of the paper's suite.
//!
//! The failover test then kills the leader with SIGKILL mid-stream,
//! proves the follower keeps serving stale-but-consistent answers,
//! restarts the leader on a new port from its durable snapshot+journal,
//! and proves the follower reconnects, resumes from its offset, and
//! converges bit-identically once the remaining trace is pushed.

#![cfg(unix)]

use csp_core::engine::run_scheme;
use csp_core::Scheme;
use csp_serve::wire::StatsReply;
use csp_serve::Client;
use csp_workloads::generate_suite;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SCHEME: &str = "union(pid+pc8)2[direct]";
const SHARDS: &str = "3";
const SCALE: f64 = 0.02;
const SEED: u64 = 11;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_csp-served")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("csp-repl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn arg(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// A served process whose stdin is held open; dropping the guard closes
/// stdin (graceful shutdown) and reaps the child. `kill9` skips the
/// grace and SIGKILLs, like a crashed host.
struct Served {
    child: Child,
    stderr_path: PathBuf,
}

impl Served {
    fn spawn(dir: &TempDir, tag: &str, args: &[&str]) -> Served {
        let stderr_path = dir.path(&format!("{tag}.stderr"));
        let child = Command::new(bin())
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stderr(fs::File::create(&stderr_path).unwrap())
            .spawn()
            .unwrap();
        Served { child, stderr_path }
    }

    fn stderr(&self) -> String {
        fs::read_to_string(&self.stderr_path).unwrap_or_default()
    }

    /// SIGKILL — no drain, no snapshot, no flush.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Closes stdin and waits for the graceful exit.
    fn shutdown(mut self) -> (bool, String) {
        drop(self.child.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().unwrap() {
                Some(status) => return (status.success(), self.stderr()),
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    panic!(
                        "serve did not exit within 30s of stdin closing:\n{}",
                        self.stderr()
                    );
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Waits for an `--addr-file` to appear and parses the bound address.
fn wait_addr(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = fs::read_to_string(path) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                return s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no address in {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match Client::connect_tcp(addr) {
            Ok(mut c) => {
                c.set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
                    .unwrap();
                return c;
            }
            Err(e) => {
                assert!(Instant::now() < deadline, "connect {addr}: {e}");
                std::thread::sleep(Duration::from_millis(30));
            }
        }
    }
}

fn stats(addr: &str) -> StatsReply {
    connect(addr).stats().unwrap()
}

/// Polls until `cond` holds over the follower's stats, or panics with the
/// last observation.
fn wait_stats(addr: &str, what: &str, cond: impl Fn(&StatsReply) -> bool) -> StatsReply {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = stats(addr);
        if cond(&s) {
            return s;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last: scored {} updates {} entries {}",
            s.scored,
            s.updates,
            s.entries
        );
        std::thread::sleep(Duration::from_millis(40));
    }
}

/// Ships the leader's newest snapshot (and nothing else — no journal) to
/// a follower's empty snapshot directory, as an operator would.
fn ship_snapshot(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    let mut shipped = 0;
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".cspsnap") {
            fs::copy(entry.path(), to.join(&name)).unwrap();
            shipped += 1;
        }
    }
    assert!(shipped > 0, "leader left no snapshot to ship");
}

fn write_trace(dir: &TempDir, bench_idx: usize) -> (PathBuf, usize, usize) {
    let suite = generate_suite(SCALE, SEED);
    let bench = &suite[bench_idx];
    let path = dir.path(&format!("trace-{bench_idx}.csptrc"));
    let file = fs::File::create(&path).unwrap();
    csp_trace::io::write_trace(std::io::BufWriter::new(file), &bench.trace).unwrap();
    (path, bench.trace.len(), bench.trace.nodes())
}

fn push(addr: &str, trace: &Path, from: usize, to: Option<usize>) {
    let mut cmd = Command::new(bin());
    cmd.args(["push", "--addr", addr, "--scheme", SCHEME])
        .args(["--from-event", &from.to_string()]);
    if let Some(to) = to {
        cmd.args(["--to-event", &to.to_string()]);
    }
    let status = cmd.arg(arg(trace)).status().unwrap();
    assert!(status.success(), "push exited {status}");
}

/// Leader and follower statistics must agree field for field — same
/// confusion counters, same update/scored totals, same entry count.
fn assert_replicas_agree(leader: &StatsReply, follower: &StatsReply, ctx: &str) {
    assert_eq!(leader.confusion, follower.confusion, "{ctx}: confusion");
    assert_eq!(leader.updates, follower.updates, "{ctx}: updates");
    assert_eq!(leader.scored, follower.scored, "{ctx}: scored");
    assert_eq!(leader.entries, follower.entries, "{ctx}: entries");
    assert_eq!(
        leader.confusion.screening().pvp.to_bits(),
        follower.confusion.screening().pvp.to_bits(),
        "{ctx}: screening rates"
    );
}

/// One leader/follower pair over one benchmark: warm half the trace into
/// the leader, ship the bootstrap snapshot, stream the journal, push the
/// rest over the wire, and require three-way bit-identity (offline ==
/// leader == follower).
fn verify_pair(dir: &TempDir, bench_idx: usize) {
    let (trace, events, nodes) = write_trace(dir, bench_idx);
    let scheme: Scheme = SCHEME.parse().unwrap();
    let suite = generate_suite(SCALE, SEED);
    let offline = run_scheme(&suite[bench_idx].trace, &scheme);
    let half = events / 2;
    let nodes_s = nodes.to_string();
    let half_s = half.to_string();

    let ldir = dir.path(&format!("leader-{bench_idx}"));
    let laddr_file = dir.path(&format!("leader-{bench_idx}.addr"));
    let leader = Served::spawn(
        dir,
        &format!("leader-{bench_idx}"),
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            SHARDS,
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&ldir),
            "--replicate",
            "--warm",
            arg(&trace),
            "--warm-events",
            &half_s,
            "--addr-file",
            arg(&laddr_file),
        ],
    );
    let laddr = wait_addr(&laddr_file);

    // Bootstrap the follower from the leader's shipped snapshot only;
    // everything past it must arrive over the stream.
    let fdir = dir.path(&format!("follower-{bench_idx}"));
    ship_snapshot(&ldir, &fdir);
    let faddr_file = dir.path(&format!("follower-{bench_idx}.addr"));
    let follower = Served::spawn(
        dir,
        &format!("follower-{bench_idx}"),
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&fdir),
            "--restore",
            "--follow",
            &laddr,
            "--addr-file",
            arg(&faddr_file),
        ],
    );
    let faddr = wait_addr(&faddr_file);

    // The second half arrives over Ingest frames, like a live producer.
    push(&laddr, &trace, half, None);

    let lstats = stats(&laddr);
    assert_eq!(
        lstats.confusion, offline,
        "bench {bench_idx}: leader != offline"
    );
    let fstats = wait_stats(&faddr, "follower catch-up", |s| {
        s.scored == lstats.scored && s.updates == lstats.updates
    });
    assert_replicas_agree(&lstats, &fstats, &format!("bench {bench_idx}"));
    assert_eq!(
        fstats.confusion, offline,
        "bench {bench_idx}: follower != offline"
    );

    let (ok, err) = follower.shutdown();
    assert!(ok, "follower shutdown failed:\n{err}");
    assert!(
        err.contains("final journal offset"),
        "follower never reported its final journal offset:\n{err}"
    );
    let (ok, err) = leader.shutdown();
    assert!(ok, "leader shutdown failed:\n{err}");
}

/// All seven benchmarks of the paper's suite, each through a real
/// leader/follower pair: offline == leader == follower, bit for bit.
#[test]
fn follower_is_bit_identical_across_the_suite() {
    let dir = TempDir::new("suite");
    let suite_len = generate_suite(SCALE, SEED).len();
    assert_eq!(suite_len, 7, "the paper's seven benchmarks");
    for bench_idx in 0..suite_len {
        verify_pair(&dir, bench_idx);
    }
}

/// Reads one metric value out of a follower's Prometheus-style scrape.
fn metric(addr: &str, name: &str) -> Option<i64> {
    let text = connect(addr).metrics().unwrap();
    csp_obs::parse_text(&text)
        .into_iter()
        .find(|s| s.name == name)
        .and_then(|s| s.value_i64())
}

/// The failover chaos proof: SIGKILL the leader mid-stream, keep serving
/// stale-but-consistent from the follower, restart the leader from its
/// durable snapshot + journal on a *new* port, and converge.
#[test]
fn leader_kill9_failover_converges_bit_identically() {
    let dir = TempDir::new("kill9");
    let (trace, events, nodes) = write_trace(&dir, 0);
    let scheme: Scheme = SCHEME.parse().unwrap();
    let offline = run_scheme(&generate_suite(SCALE, SEED)[0].trace, &scheme);
    let (t1, t2) = (events / 3, 2 * events / 3);
    let nodes_s = nodes.to_string();

    let ldir = dir.path("leader");
    let addr_file = dir.path("leader.addr");
    let leader_args = |warm: bool| {
        let mut v = vec![
            "--scheme".to_string(),
            SCHEME.to_string(),
            "--nodes".to_string(),
            nodes_s.clone(),
            "--shards".to_string(),
            SHARDS.to_string(),
            "--listen".to_string(),
            "127.0.0.1:0".to_string(),
            "--snapshot-dir".to_string(),
            ldir.to_str().unwrap().to_string(),
            "--replicate".to_string(),
            "--addr-file".to_string(),
            addr_file.to_str().unwrap().to_string(),
        ];
        if warm {
            v.extend([
                "--warm".to_string(),
                trace.to_str().unwrap().to_string(),
                "--warm-events".to_string(),
                t1.to_string(),
            ]);
        } else {
            v.push("--restore".to_string());
        }
        v
    };
    let args1 = leader_args(true);
    let args1: Vec<&str> = args1.iter().map(String::as_str).collect();
    let mut leader = Served::spawn(&dir, "leader1", &args1);
    let laddr = wait_addr(&addr_file);

    // Follower dials through --follow-file, so a restarted leader only
    // has to rewrite the file to be found again.
    let fdir = dir.path("follower");
    ship_snapshot(&ldir, &fdir);
    let faddr_file = dir.path("follower.addr");
    let follower = Served::spawn(
        &dir,
        "follower",
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&fdir),
            "--restore",
            "--follow-file",
            arg(&addr_file),
            "--addr-file",
            arg(&faddr_file),
        ],
    );
    let faddr = wait_addr(&faddr_file);

    // Second third over the wire; wait until the follower has all of it,
    // so the SIGKILL lands with an idle-but-subscribed stream.
    push(&laddr, &trace, t1, Some(t2));
    let mid = stats(&laddr);
    let fmid = wait_stats(&faddr, "pre-kill catch-up", |s| {
        s.scored == mid.scored && s.updates == mid.updates
    });
    assert_replicas_agree(&mid, &fmid, "pre-kill");

    // Crash. No drain, no final snapshot — only the journal's per-append
    // flushes stand between the leader's state and oblivion.
    leader.kill9();
    let _ = fs::remove_file(&addr_file);

    // The follower must keep answering, stale but consistent, while the
    // leader is gone.
    let stale = stats(&faddr);
    assert_replicas_agree(&mid, &stale, "during outage");
    let disconnected = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if metric(&faddr, "csp_repl_connected") == Some(0) {
                break true;
            }
            if Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    assert!(disconnected, "follower never noticed the leader die");

    // Restart from durable state on a fresh ephemeral port. --restore
    // loads the bootstrap snapshot; the journal replays everything past
    // it, including the pushed second third.
    let args2 = leader_args(false);
    let args2: Vec<&str> = args2.iter().map(String::as_str).collect();
    let leader = Served::spawn(&dir, "leader2", &args2);
    let laddr2 = wait_addr(&addr_file);
    assert_ne!(laddr, laddr2, "ephemeral rebind should move the port");
    let recovered = stats(&laddr2);
    assert_replicas_agree(&mid, &recovered, "post-restart recovery");

    // The follower finds the new address, reconnects, and resumes from
    // its durable offset — no re-bootstrap.
    wait_stats(&faddr, "reconnect", |_| {
        metric(&faddr, "csp_repl_connected") == Some(1)
    });
    assert!(
        metric(&faddr, "csp_repl_reconnects_total").unwrap_or(0) >= 1,
        "reconnect counter never moved"
    );

    // Final third; everyone converges on the offline truth.
    push(&laddr2, &trace, t2, None);
    let lfinal = stats(&laddr2);
    assert_eq!(
        lfinal.confusion, offline,
        "leader != offline after failover"
    );
    let ffinal = wait_stats(&faddr, "post-failover catch-up", |s| {
        s.scored == lfinal.scored && s.updates == lfinal.updates
    });
    assert_replicas_agree(&lfinal, &ffinal, "post-failover");
    assert_eq!(
        ffinal.confusion, offline,
        "follower != offline after failover"
    );

    let (ok, err) = follower.shutdown();
    assert!(ok, "follower shutdown failed:\n{err}");
    let (ok, err) = leader.shutdown();
    assert!(ok, "restarted leader shutdown failed:\n{err}");
}
