//! The replication proof, end to end through the real binary: a leader
//! journals every mutation, a follower bootstraps from a shipped
//! snapshot and streams the journal live — and the follower's screening
//! statistics must be *bit-identical* to the leader's and to the offline
//! engine's, across every benchmark of the paper's suite.
//!
//! The failover tests then kill the leader with SIGKILL mid-stream and
//! prove both recovery paths: the *restart* path (the same leader comes
//! back from its durable snapshot+journal and the follower resumes),
//! and the *promotion* path (a follower bumps the fencing epoch, takes
//! over leadership, re-parents the remaining replicas onto itself by
//! rewriting the shared `--follow-file`, and the deposed epoch's writes
//! are refused with a typed `fenced` error) — by hand via the `promote`
//! subcommand and automatically via `--auto-promote` lease expiry,
//! rank-ordered so exactly one replica claims the term. Chained
//! fan-out (leader → follower → follower) is proven bit-identical too.

#![cfg(unix)]

use csp_core::engine::run_scheme;
use csp_core::Scheme;
use csp_serve::wire::StatsReply;
use csp_serve::Client;
use csp_workloads::generate_suite;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SCHEME: &str = "union(pid+pc8)2[direct]";
const SHARDS: &str = "3";
const SCALE: f64 = 0.02;
const SEED: u64 = 11;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_csp-served")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("csp-repl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn arg(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// A served process whose stdin is held open; dropping the guard closes
/// stdin (graceful shutdown) and reaps the child. `kill9` skips the
/// grace and SIGKILLs, like a crashed host.
struct Served {
    child: Child,
    stderr_path: PathBuf,
}

impl Served {
    fn spawn(dir: &TempDir, tag: &str, args: &[&str]) -> Served {
        let stderr_path = dir.path(&format!("{tag}.stderr"));
        let child = Command::new(bin())
            .arg("serve")
            .args(args)
            .stdin(Stdio::piped())
            .stderr(fs::File::create(&stderr_path).unwrap())
            .spawn()
            .unwrap();
        Served { child, stderr_path }
    }

    fn stderr(&self) -> String {
        fs::read_to_string(&self.stderr_path).unwrap_or_default()
    }

    /// SIGKILL — no drain, no snapshot, no flush.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Closes stdin and waits for the graceful exit.
    fn shutdown(mut self) -> (bool, String) {
        drop(self.child.stdin.take());
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match self.child.try_wait().unwrap() {
                Some(status) => return (status.success(), self.stderr()),
                None if Instant::now() > deadline => {
                    let _ = self.child.kill();
                    let _ = self.child.wait();
                    panic!(
                        "serve did not exit within 30s of stdin closing:\n{}",
                        self.stderr()
                    );
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl Drop for Served {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Waits for an `--addr-file` to appear and parses the bound address.
fn wait_addr(path: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(s) = fs::read_to_string(path) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                return s;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no address in {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        match Client::connect_tcp(addr) {
            Ok(mut c) => {
                c.set_timeouts(Some(Duration::from_secs(10)), Some(Duration::from_secs(10)))
                    .unwrap();
                return c;
            }
            Err(e) => {
                assert!(Instant::now() < deadline, "connect {addr}: {e}");
                std::thread::sleep(Duration::from_millis(30));
            }
        }
    }
}

fn stats(addr: &str) -> StatsReply {
    connect(addr).stats().unwrap()
}

/// Polls until `cond` holds over the follower's stats, or panics with the
/// last observation.
fn wait_stats(addr: &str, what: &str, cond: impl Fn(&StatsReply) -> bool) -> StatsReply {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let s = stats(addr);
        if cond(&s) {
            return s;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last: scored {} updates {} entries {}",
            s.scored,
            s.updates,
            s.entries
        );
        std::thread::sleep(Duration::from_millis(40));
    }
}

/// Ships the leader's newest snapshot (and nothing else — no journal) to
/// a follower's empty snapshot directory, as an operator would.
fn ship_snapshot(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    let mut shipped = 0;
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".cspsnap") {
            fs::copy(entry.path(), to.join(&name)).unwrap();
            shipped += 1;
        }
    }
    assert!(shipped > 0, "leader left no snapshot to ship");
}

fn write_trace(dir: &TempDir, bench_idx: usize) -> (PathBuf, usize, usize) {
    let suite = generate_suite(SCALE, SEED);
    let bench = &suite[bench_idx];
    let path = dir.path(&format!("trace-{bench_idx}.csptrc"));
    let file = fs::File::create(&path).unwrap();
    csp_trace::io::write_trace(std::io::BufWriter::new(file), &bench.trace).unwrap();
    (path, bench.trace.len(), bench.trace.nodes())
}

fn push(addr: &str, trace: &Path, from: usize, to: Option<usize>) {
    let (ok, err) = push_at_epoch(addr, trace, from, to, 0);
    assert!(ok, "push failed:\n{err}");
}

/// Runs `csp-served push --epoch N` and reports (success, stderr) so
/// callers can assert fencing rejections as well as accepted writes.
fn push_at_epoch(
    addr: &str,
    trace: &Path,
    from: usize,
    to: Option<usize>,
    epoch: u64,
) -> (bool, String) {
    let mut cmd = Command::new(bin());
    cmd.args(["push", "--addr", addr, "--scheme", SCHEME])
        .args(["--from-event", &from.to_string()])
        .args(["--epoch", &epoch.to_string()]);
    if let Some(to) = to {
        cmd.args(["--to-event", &to.to_string()]);
    }
    let out = cmd.arg(arg(trace)).output().unwrap();
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Runs the `promote` subcommand against a follower and reports
/// (success, stdout + stderr).
fn promote(addr: &str, nodes: &str, min_epoch: u64) -> (bool, String) {
    let out = Command::new(bin())
        .args(["promote", "--addr", addr, "--scheme", SCHEME])
        .args(["--nodes", nodes])
        .args(["--min-epoch", &min_epoch.to_string()])
        .output()
        .unwrap();
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

/// Leader and follower statistics must agree field for field — same
/// confusion counters, same update/scored totals, same entry count.
fn assert_replicas_agree(leader: &StatsReply, follower: &StatsReply, ctx: &str) {
    assert_eq!(leader.confusion, follower.confusion, "{ctx}: confusion");
    assert_eq!(leader.updates, follower.updates, "{ctx}: updates");
    assert_eq!(leader.scored, follower.scored, "{ctx}: scored");
    assert_eq!(leader.entries, follower.entries, "{ctx}: entries");
    assert_eq!(
        leader.confusion.screening().pvp.to_bits(),
        follower.confusion.screening().pvp.to_bits(),
        "{ctx}: screening rates"
    );
}

/// One leader/follower pair over one benchmark: warm half the trace into
/// the leader, ship the bootstrap snapshot, stream the journal, push the
/// rest over the wire, and require three-way bit-identity (offline ==
/// leader == follower).
fn verify_pair(dir: &TempDir, bench_idx: usize) {
    let (trace, events, nodes) = write_trace(dir, bench_idx);
    let scheme: Scheme = SCHEME.parse().unwrap();
    let suite = generate_suite(SCALE, SEED);
    let offline = run_scheme(&suite[bench_idx].trace, &scheme);
    let half = events / 2;
    let nodes_s = nodes.to_string();
    let half_s = half.to_string();

    let ldir = dir.path(&format!("leader-{bench_idx}"));
    let laddr_file = dir.path(&format!("leader-{bench_idx}.addr"));
    let leader = Served::spawn(
        dir,
        &format!("leader-{bench_idx}"),
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            SHARDS,
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&ldir),
            "--replicate",
            "--warm",
            arg(&trace),
            "--warm-events",
            &half_s,
            "--addr-file",
            arg(&laddr_file),
        ],
    );
    let laddr = wait_addr(&laddr_file);

    // Bootstrap the follower from the leader's shipped snapshot only;
    // everything past it must arrive over the stream.
    let fdir = dir.path(&format!("follower-{bench_idx}"));
    ship_snapshot(&ldir, &fdir);
    let faddr_file = dir.path(&format!("follower-{bench_idx}.addr"));
    let follower = Served::spawn(
        dir,
        &format!("follower-{bench_idx}"),
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&fdir),
            "--restore",
            "--follow",
            &laddr,
            "--addr-file",
            arg(&faddr_file),
        ],
    );
    let faddr = wait_addr(&faddr_file);

    // The second half arrives over Ingest frames, like a live producer.
    push(&laddr, &trace, half, None);

    let lstats = stats(&laddr);
    assert_eq!(
        lstats.confusion, offline,
        "bench {bench_idx}: leader != offline"
    );
    let fstats = wait_stats(&faddr, "follower catch-up", |s| {
        s.scored == lstats.scored && s.updates == lstats.updates
    });
    assert_replicas_agree(&lstats, &fstats, &format!("bench {bench_idx}"));
    assert_eq!(
        fstats.confusion, offline,
        "bench {bench_idx}: follower != offline"
    );

    let (ok, err) = follower.shutdown();
    assert!(ok, "follower shutdown failed:\n{err}");
    assert!(
        err.contains("final journal offset"),
        "follower never reported its final journal offset:\n{err}"
    );
    let (ok, err) = leader.shutdown();
    assert!(ok, "leader shutdown failed:\n{err}");
}

/// All seven benchmarks of the paper's suite, each through a real
/// leader/follower pair: offline == leader == follower, bit for bit.
#[test]
fn follower_is_bit_identical_across_the_suite() {
    let dir = TempDir::new("suite");
    let suite_len = generate_suite(SCALE, SEED).len();
    assert_eq!(suite_len, 7, "the paper's seven benchmarks");
    for bench_idx in 0..suite_len {
        verify_pair(&dir, bench_idx);
    }
}

/// Reads one metric value out of a follower's Prometheus-style scrape.
fn metric(addr: &str, name: &str) -> Option<i64> {
    let text = connect(addr).metrics().unwrap();
    csp_obs::parse_text(&text)
        .into_iter()
        .find(|s| s.name == name)
        .and_then(|s| s.value_i64())
}

/// The failover chaos proof: SIGKILL the leader mid-stream, keep serving
/// stale-but-consistent from the follower, restart the leader from its
/// durable snapshot + journal on a *new* port, and converge.
#[test]
fn leader_kill9_failover_converges_bit_identically() {
    let dir = TempDir::new("kill9");
    let (trace, events, nodes) = write_trace(&dir, 0);
    let scheme: Scheme = SCHEME.parse().unwrap();
    let offline = run_scheme(&generate_suite(SCALE, SEED)[0].trace, &scheme);
    let (t1, t2) = (events / 3, 2 * events / 3);
    let nodes_s = nodes.to_string();

    let ldir = dir.path("leader");
    let addr_file = dir.path("leader.addr");
    let leader_args = |warm: bool| {
        let mut v = vec![
            "--scheme".to_string(),
            SCHEME.to_string(),
            "--nodes".to_string(),
            nodes_s.clone(),
            "--shards".to_string(),
            SHARDS.to_string(),
            "--listen".to_string(),
            "127.0.0.1:0".to_string(),
            "--snapshot-dir".to_string(),
            ldir.to_str().unwrap().to_string(),
            "--replicate".to_string(),
            "--addr-file".to_string(),
            addr_file.to_str().unwrap().to_string(),
        ];
        if warm {
            v.extend([
                "--warm".to_string(),
                trace.to_str().unwrap().to_string(),
                "--warm-events".to_string(),
                t1.to_string(),
            ]);
        } else {
            v.push("--restore".to_string());
        }
        v
    };
    let args1 = leader_args(true);
    let args1: Vec<&str> = args1.iter().map(String::as_str).collect();
    let mut leader = Served::spawn(&dir, "leader1", &args1);
    let laddr = wait_addr(&addr_file);

    // Follower dials through --follow-file, so a restarted leader only
    // has to rewrite the file to be found again.
    let fdir = dir.path("follower");
    ship_snapshot(&ldir, &fdir);
    let faddr_file = dir.path("follower.addr");
    let follower = Served::spawn(
        &dir,
        "follower",
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            "2",
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&fdir),
            "--restore",
            "--follow-file",
            arg(&addr_file),
            "--addr-file",
            arg(&faddr_file),
        ],
    );
    let faddr = wait_addr(&faddr_file);

    // Second third over the wire; wait until the follower has all of it,
    // so the SIGKILL lands with an idle-but-subscribed stream.
    push(&laddr, &trace, t1, Some(t2));
    let mid = stats(&laddr);
    let fmid = wait_stats(&faddr, "pre-kill catch-up", |s| {
        s.scored == mid.scored && s.updates == mid.updates
    });
    assert_replicas_agree(&mid, &fmid, "pre-kill");

    // Crash. No drain, no final snapshot — only the journal's per-append
    // flushes stand between the leader's state and oblivion.
    leader.kill9();
    let _ = fs::remove_file(&addr_file);

    // The follower must keep answering, stale but consistent, while the
    // leader is gone.
    let stale = stats(&faddr);
    assert_replicas_agree(&mid, &stale, "during outage");
    let disconnected = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if metric(&faddr, "csp_repl_connected") == Some(0) {
                break true;
            }
            if Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    assert!(disconnected, "follower never noticed the leader die");

    // Restart from durable state on a fresh ephemeral port. --restore
    // loads the bootstrap snapshot; the journal replays everything past
    // it, including the pushed second third.
    let args2 = leader_args(false);
    let args2: Vec<&str> = args2.iter().map(String::as_str).collect();
    let leader = Served::spawn(&dir, "leader2", &args2);
    let laddr2 = wait_addr(&addr_file);
    assert_ne!(laddr, laddr2, "ephemeral rebind should move the port");
    let recovered = stats(&laddr2);
    assert_replicas_agree(&mid, &recovered, "post-restart recovery");

    // The follower finds the new address, reconnects, and resumes from
    // its durable offset — no re-bootstrap.
    wait_stats(&faddr, "reconnect", |_| {
        metric(&faddr, "csp_repl_connected") == Some(1)
    });
    assert!(
        metric(&faddr, "csp_repl_reconnects_total").unwrap_or(0) >= 1,
        "reconnect counter never moved"
    );

    // Final third; everyone converges on the offline truth.
    push(&laddr2, &trace, t2, None);
    let lfinal = stats(&laddr2);
    assert_eq!(
        lfinal.confusion, offline,
        "leader != offline after failover"
    );
    let ffinal = wait_stats(&faddr, "post-failover catch-up", |s| {
        s.scored == lfinal.scored && s.updates == lfinal.updates
    });
    assert_replicas_agree(&lfinal, &ffinal, "post-failover");
    assert_eq!(
        ffinal.confusion, offline,
        "follower != offline after failover"
    );

    let (ok, err) = follower.shutdown();
    assert!(ok, "follower shutdown failed:\n{err}");
    let (ok, err) = leader.shutdown();
    assert!(ok, "restarted leader shutdown failed:\n{err}");
}

/// Spawns a durable follower bootstrapped from a shipped snapshot,
/// following the address in `follow_file`, with optional auto-promote
/// rank. Returns the process and its bound address.
#[allow(clippy::too_many_arguments)]
fn spawn_follower(
    dir: &TempDir,
    tag: &str,
    nodes_s: &str,
    snap_dir: &Path,
    follow_file: &Path,
    addr_file: &Path,
    rank: Option<u64>,
    lease_ms: Option<u64>,
) -> (Served, String) {
    let mut args = vec![
        "--scheme".to_string(),
        SCHEME.to_string(),
        "--nodes".to_string(),
        nodes_s.to_string(),
        "--shards".to_string(),
        "2".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--snapshot-dir".to_string(),
        snap_dir.to_str().unwrap().to_string(),
        "--restore".to_string(),
        "--follow-file".to_string(),
        follow_file.to_str().unwrap().to_string(),
        "--addr-file".to_string(),
        addr_file.to_str().unwrap().to_string(),
    ];
    if let Some(rank) = rank {
        args.extend([
            "--replica-id".to_string(),
            rank.to_string(),
            "--auto-promote".to_string(),
        ]);
    }
    if let Some(ms) = lease_ms {
        args.extend(["--lease-ms".to_string(), ms.to_string()]);
    }
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let served = Served::spawn(dir, tag, &argv);
    let addr = wait_addr(addr_file);
    (served, addr)
}

/// Polls until a follow-file names the expected address (promotion
/// rewrites it moments after the epoch bump becomes visible).
fn wait_file_addr(path: &Path, want: &str, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let got = fs::read_to_string(path)
            .unwrap_or_default()
            .trim()
            .to_string();
        if got == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {} still names {got:?}, want {want:?}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

/// Polls a node's `csp_repl_epoch` gauge until it reaches `want`.
fn wait_epoch(addr: &str, want: i64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let epoch = metric(addr, "csp_repl_epoch");
        if epoch >= Some(want) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; epoch stuck at {epoch:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Chained fan-out: the middle node is a follower *and* a leader — it
/// streams from the root and relays its own replication log downstream.
/// End of the chain must still be bit-identical to the root and to the
/// offline engine, and the middle node's downstream lease must pin its
/// journal while the tail is subscribed.
#[test]
fn chained_follower_relays_bit_identically() {
    let dir = TempDir::new("chain");
    let (trace, events, nodes) = write_trace(&dir, 2);
    let scheme: Scheme = SCHEME.parse().unwrap();
    let offline = run_scheme(&generate_suite(SCALE, SEED)[2].trace, &scheme);
    let half = events / 2;
    let nodes_s = nodes.to_string();
    let half_s = half.to_string();

    let ldir = dir.path("root");
    let laddr_file = dir.path("root.addr");
    let leader = Served::spawn(
        &dir,
        "root",
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            SHARDS,
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&ldir),
            "--replicate",
            "--warm",
            arg(&trace),
            "--warm-events",
            &half_s,
            "--addr-file",
            arg(&laddr_file),
        ],
    );
    let laddr = wait_addr(&laddr_file);

    // Middle of the chain: follows the root, relays to the tail. Both
    // hops bootstrap from the same shipped snapshot.
    let mdir = dir.path("mid");
    ship_snapshot(&ldir, &mdir);
    let maddr_file = dir.path("mid.addr");
    let (mid, maddr) = spawn_follower(
        &dir,
        "mid",
        &nodes_s,
        &mdir,
        &laddr_file,
        &maddr_file,
        None,
        None,
    );

    let tdir = dir.path("tail");
    ship_snapshot(&ldir, &tdir);
    let taddr_file = dir.path("tail.addr");
    let (tail, taddr) = spawn_follower(
        &dir,
        "tail",
        &nodes_s,
        &tdir,
        &maddr_file,
        &taddr_file,
        None,
        None,
    );

    // Everything past the snapshot flows root -> mid -> tail.
    push(&laddr, &trace, half, None);
    let lstats = stats(&laddr);
    assert_eq!(lstats.confusion, offline, "chain root != offline");
    let mstats = wait_stats(&maddr, "mid catch-up", |s| {
        s.scored == lstats.scored && s.updates == lstats.updates
    });
    assert_replicas_agree(&lstats, &mstats, "root vs mid");
    let tstats = wait_stats(&taddr, "tail catch-up", |s| {
        s.scored == lstats.scored && s.updates == lstats.updates
    });
    assert_replicas_agree(&lstats, &tstats, "root vs tail");
    assert_eq!(tstats.confusion, offline, "chain tail != offline");

    // The tail's subscription holds a lease on the middle node's log, so
    // its journal horizon is pinned while the tail might still resume.
    wait_stats(&maddr, "downstream lease on the middle node", |_| {
        metric(&maddr, "csp_repl_downstream_leases") == Some(1)
    });

    let (ok, err) = tail.shutdown();
    assert!(ok, "tail shutdown failed:\n{err}");
    let (ok, err) = mid.shutdown();
    assert!(ok, "mid shutdown failed:\n{err}");
    let (ok, err) = leader.shutdown();
    assert!(ok, "root shutdown failed:\n{err}");
}

/// Promotion by hand: SIGKILL the leader, run `csp-served promote`
/// against the survivor, and prove the epoch fence — the deposed
/// epoch's pushes are refused with a typed error while current-epoch
/// writes land, converging bit-identically with the offline engine.
#[test]
fn manual_promote_fences_the_deposed_epoch() {
    let dir = TempDir::new("promote");
    let (trace, events, nodes) = write_trace(&dir, 1);
    let scheme: Scheme = SCHEME.parse().unwrap();
    let offline = run_scheme(&generate_suite(SCALE, SEED)[1].trace, &scheme);
    let (t1, t2) = (events / 3, 2 * events / 3);
    let nodes_s = nodes.to_string();
    let t1_s = t1.to_string();

    let ldir = dir.path("leader");
    let addr_file = dir.path("leader.addr");
    let mut leader = Served::spawn(
        &dir,
        "leader",
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            SHARDS,
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&ldir),
            "--replicate",
            "--warm",
            arg(&trace),
            "--warm-events",
            &t1_s,
            "--addr-file",
            arg(&addr_file),
        ],
    );
    let laddr = wait_addr(&addr_file);

    let fdir = dir.path("follower");
    ship_snapshot(&ldir, &fdir);
    let faddr_file = dir.path("follower.addr");
    let (follower, faddr) = spawn_follower(
        &dir,
        "follower",
        &nodes_s,
        &fdir,
        &addr_file,
        &faddr_file,
        None,
        None,
    );

    push(&laddr, &trace, t1, Some(t2));
    let mid = stats(&laddr);
    wait_stats(&faddr, "pre-kill catch-up", |s| {
        s.scored == mid.scored && s.updates == mid.updates
    });

    leader.kill9();

    // Operator-driven failover: claim at least term 7 (well past the
    // deposed leader's term 1) over the wire.
    let (ok, out) = promote(&faddr, &nodes_s, 7);
    assert!(ok, "promote subcommand failed:\n{out}");
    assert!(out.contains("epoch 7"), "unexpected promote output:\n{out}");
    wait_epoch(&faddr, 7, "promoted epoch");
    assert!(
        follower.stderr().contains("promoted to leader (epoch 7)"),
        "follower never logged its promotion:\n{}",
        follower.stderr()
    );

    // Re-parenting: the shared follow-file now names the new leader.
    wait_file_addr(&addr_file, &faddr, "manual promotion re-parenting");

    // The fence: a producer still stamping the deposed term is refused
    // with a typed error; a current-term producer lands.
    let (ok, err) = push_at_epoch(&faddr, &trace, t2, None, 1);
    assert!(!ok, "stale-epoch push must be refused");
    assert!(err.contains("fenced"), "expected a fencing error:\n{err}");
    let fenced = stats(&faddr);
    assert_replicas_agree(&mid, &fenced, "fenced push must not mutate");

    let (ok, err) = push_at_epoch(&faddr, &trace, t2, None, 7);
    assert!(ok, "current-epoch push failed:\n{err}");
    let ffinal = stats(&faddr);
    assert_eq!(
        ffinal.confusion, offline,
        "promoted leader != offline after manual failover"
    );

    let (ok, err) = follower.shutdown();
    assert!(ok, "promoted leader shutdown failed:\n{err}");
    assert!(
        err.contains("final journal offset"),
        "promoted leader never reported its final journal offset:\n{err}"
    );
}

/// The headline chaos proof, across every benchmark of the suite:
/// SIGKILL the leader mid-stream with two ranked `--auto-promote`
/// replicas subscribed. The lowest rank's lease deadline fires first and
/// it promotes itself; the other replica re-parents onto it through the
/// rewritten follow-file; the remaining trace pushed to the *new* leader
/// converges every survivor bit-identically with the offline engine.
fn verify_auto_failover(dir: &TempDir, bench_idx: usize) {
    let (trace, events, nodes) = write_trace(dir, bench_idx);
    let scheme: Scheme = SCHEME.parse().unwrap();
    let suite = generate_suite(SCALE, SEED);
    let offline = run_scheme(&suite[bench_idx].trace, &scheme);
    let (t1, t2) = (events / 3, 2 * events / 3);
    let nodes_s = nodes.to_string();
    let t1_s = t1.to_string();

    // Short leases make the chaos window testable: rank 0's deadline is
    // one lease (2.5s), rank 1 waits three (7.5s) — enough to ride out
    // reconnect backoff and re-parent instead of double-claiming.
    let lease_ms = "2500";
    let ldir = dir.path(&format!("al-{bench_idx}"));
    let addr_file = dir.path(&format!("al-{bench_idx}.addr"));
    let mut leader = Served::spawn(
        dir,
        &format!("al-{bench_idx}"),
        &[
            "--scheme",
            SCHEME,
            "--nodes",
            &nodes_s,
            "--shards",
            SHARDS,
            "--listen",
            "127.0.0.1:0",
            "--snapshot-dir",
            arg(&ldir),
            "--replicate",
            "--lease-ms",
            lease_ms,
            "--warm",
            arg(&trace),
            "--warm-events",
            &t1_s,
            "--addr-file",
            arg(&addr_file),
        ],
    );
    let laddr = wait_addr(&addr_file);

    let adir = dir.path(&format!("aa-{bench_idx}"));
    ship_snapshot(&ldir, &adir);
    let aaddr_file = dir.path(&format!("aa-{bench_idx}.addr"));
    let (a, aaddr) = spawn_follower(
        dir,
        &format!("aa-{bench_idx}"),
        &nodes_s,
        &adir,
        &addr_file,
        &aaddr_file,
        Some(0),
        None,
    );

    let bdir = dir.path(&format!("ab-{bench_idx}"));
    ship_snapshot(&ldir, &bdir);
    let baddr_file = dir.path(&format!("ab-{bench_idx}.addr"));
    let (b, baddr) = spawn_follower(
        dir,
        &format!("ab-{bench_idx}"),
        &nodes_s,
        &bdir,
        &addr_file,
        &baddr_file,
        Some(1),
        None,
    );

    // Both replicas fully synced before the crash, so the kill lands on
    // an idle-but-subscribed stream.
    push(&laddr, &trace, t1, Some(t2));
    let mid = stats(&laddr);
    for (addr, what) in [(&aaddr, "rank 0 pre-kill"), (&baddr, "rank 1 pre-kill")] {
        let s = wait_stats(addr, what, |s| {
            s.scored == mid.scored && s.updates == mid.updates
        });
        assert_replicas_agree(&mid, &s, what);
    }

    // Crash. Nobody rewrites the follow-file for them: rank 0's lease
    // deadline must fire, bump the epoch, and re-parent the fleet.
    leader.kill9();
    wait_epoch(&aaddr, 2, "rank 0 auto-promotion");
    wait_file_addr(
        &addr_file,
        &aaddr,
        &format!("bench {bench_idx}: auto-promotion re-parenting"),
    );

    // The remaining trace goes to the *new* leader; both survivors must
    // converge on the offline truth.
    push(&aaddr, &trace, t2, None);
    let afinal = stats(&aaddr);
    assert_eq!(
        afinal.confusion, offline,
        "bench {bench_idx}: promoted leader != offline"
    );
    let bfinal = wait_stats(&baddr, "rank 1 re-parent catch-up", |s| {
        s.scored == afinal.scored && s.updates == afinal.updates
    });
    assert_replicas_agree(
        &afinal,
        &bfinal,
        &format!("bench {bench_idx}: post-promotion"),
    );
    assert_eq!(
        bfinal.confusion, offline,
        "bench {bench_idx}: re-parented follower != offline"
    );

    // Exactly one claimant: rank 0 promoted, rank 1 re-parented.
    assert!(
        a.stderr().contains("auto-promoted"),
        "bench {bench_idx}: rank 0 never promoted:\n{}",
        a.stderr()
    );
    assert!(
        !b.stderr().contains("auto-promoted"),
        "bench {bench_idx}: rank 1 double-claimed leadership:\n{}",
        b.stderr()
    );

    let (ok, err) = b.shutdown();
    assert!(ok, "bench {bench_idx}: rank 1 shutdown failed:\n{err}");
    let (ok, err) = a.shutdown();
    assert!(
        ok,
        "bench {bench_idx}: promoted leader shutdown failed:\n{err}"
    );
}

/// All seven benchmarks through the full chaos sequence: kill -9 the
/// leader, lease-driven auto-promotion, chain re-parenting, and
/// bit-identical convergence on the new leader.
#[test]
fn auto_promotion_converges_bit_identically_across_the_suite() {
    let dir = TempDir::new("autofail");
    let suite_len = generate_suite(SCALE, SEED).len();
    assert_eq!(suite_len, 7, "the paper's seven benchmarks");
    for bench_idx in 0..suite_len {
        verify_auto_failover(&dir, bench_idx);
    }
}
