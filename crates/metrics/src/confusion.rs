//! The four-cell confusion matrix of Figure 5 of the paper.

use crate::Screening;
use csp_trace::SharingBitmap;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Counts of the four prediction outcomes, accumulated bit-wise over
/// decisions.
///
/// Each coherence store miss contributes one decision *per node*: predicted
/// ∧ actual → true positive, predicted ∧ ¬actual → false positive,
/// ¬predicted ∧ actual → false negative, ¬predicted ∧ ¬actual → true
/// negative.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Correctly predicted shared.
    pub tp: u64,
    /// Incorrectly predicted shared (punitive: wasted forwards).
    pub fp: u64,
    /// Correctly predicted not shared.
    pub tn: u64,
    /// Incorrectly predicted not shared (missed opportunities).
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Scores one decision: `predicted` vs `actual` over an `nodes`-wide
    /// machine. Bits at or beyond `nodes` are ignored.
    #[inline]
    pub fn record(&mut self, predicted: SharingBitmap, actual: SharingBitmap, nodes: usize) {
        let p = predicted.masked(nodes);
        let a = actual.masked(nodes);
        let tp = (p & a).count() as u64;
        let fp = (p - a).count() as u64;
        let fn_ = (a - p).count() as u64;
        self.tp += tp;
        self.fp += fp;
        self.fn_ += fn_;
        self.tn += nodes as u64 - tp - fp - fn_;
    }

    /// Total decisions scored (TP + FP + TN + FN).
    #[inline]
    pub fn decisions(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Total actual sharing (TP + FN): the paper's "dynamic sharing events".
    #[inline]
    pub fn actual_positives(&self) -> u64 {
        self.tp + self.fn_
    }

    /// Total predicted sharing (TP + FP): the data-forwarding traffic a
    /// forwarding protocol driven by this predictor would inject.
    #[inline]
    pub fn predicted_positives(&self) -> u64 {
        self.tp + self.fp
    }

    /// Derives the screening-test rates.
    pub fn screening(&self) -> Screening {
        Screening::from_confusion(self)
    }
}

impl Add for ConfusionMatrix {
    type Output = ConfusionMatrix;

    fn add(self, rhs: ConfusionMatrix) -> ConfusionMatrix {
        ConfusionMatrix {
            tp: self.tp + rhs.tp,
            fp: self.fp + rhs.fp,
            tn: self.tn + rhs.tn,
            fn_: self.fn_ + rhs.fn_,
        }
    }
}

impl AddAssign for ConfusionMatrix {
    fn add_assign(&mut self, rhs: ConfusionMatrix) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for ConfusionMatrix {
    fn sum<I: Iterator<Item = ConfusionMatrix>>(iter: I) -> ConfusionMatrix {
        iter.fold(ConfusionMatrix::default(), Add::add)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={}",
            self.tp, self.fp, self.tn, self.fn_
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::NodeId;
    use proptest::prelude::*;

    #[test]
    fn empty_matrix() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.decisions(), 0);
        assert_eq!(m.actual_positives(), 0);
        assert_eq!(m.predicted_positives(), 0);
    }

    #[test]
    fn perfect_prediction_has_no_errors() {
        let mut m = ConfusionMatrix::default();
        let b = SharingBitmap::from_nodes(&[NodeId(0), NodeId(5)]);
        m.record(b, b, 16);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fp, 0);
        assert_eq!(m.fn_, 0);
        assert_eq!(m.tn, 14);
    }

    #[test]
    fn out_of_machine_bits_are_ignored() {
        let mut m = ConfusionMatrix::default();
        m.record(
            SharingBitmap::from_bits(u64::MAX),
            SharingBitmap::empty(),
            4,
        );
        assert_eq!(m.fp, 4);
        assert_eq!(m.decisions(), 4);
    }

    #[test]
    fn addition_merges_counts() {
        let mut a = ConfusionMatrix::default();
        a.record(SharingBitmap::all(4), SharingBitmap::all(4), 4);
        let mut b = ConfusionMatrix::default();
        b.record(SharingBitmap::empty(), SharingBitmap::all(4), 4);
        let c = a + b;
        assert_eq!(c.tp, 4);
        assert_eq!(c.fn_, 4);
        assert_eq!(c.decisions(), 8);
        let s: ConfusionMatrix = [a, b].into_iter().sum();
        assert_eq!(s, c);
    }

    proptest! {
        /// Every decision lands in exactly one cell.
        #[test]
        fn prop_cells_partition_decisions(p: u64, a: u64, n in 1usize..=64, reps in 1usize..10) {
            let mut m = ConfusionMatrix::default();
            for _ in 0..reps {
                m.record(SharingBitmap::from_bits(p), SharingBitmap::from_bits(a), n);
            }
            prop_assert_eq!(m.decisions(), (n * reps) as u64);
        }

        /// Actual positives depend only on the actual bitmap.
        #[test]
        fn prop_actual_positives_independent_of_prediction(p1: u64, p2: u64, a: u64) {
            let mut m1 = ConfusionMatrix::default();
            let mut m2 = ConfusionMatrix::default();
            m1.record(SharingBitmap::from_bits(p1), SharingBitmap::from_bits(a), 16);
            m2.record(SharingBitmap::from_bits(p2), SharingBitmap::from_bits(a), 16);
            prop_assert_eq!(m1.actual_positives(), m2.actual_positives());
        }
    }
}
