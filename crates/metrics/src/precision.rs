//! Measurement precision of screening rates, after Gastwirth (1987).
//!
//! Section 5.3 of the paper notes that "low prevalence also compounds the
//! errors in measuring the accuracy of a prediction scheme. As the
//! prevalence of the underlying phenomenon decreases, the measurement error
//! increases". This module quantifies that effect: binomial standard errors
//! for each estimated rate, and the prevalence-driven error amplification
//! of PVP.

use crate::ConfusionMatrix;

/// Standard errors of the estimated screening rates, treating each rate as
/// a binomial proportion `p̂` with `SE = sqrt(p̂(1-p̂)/n)` over its own
/// denominator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RateErrors {
    /// Standard error of the prevalence estimate.
    pub prevalence: f64,
    /// Standard error of the sensitivity estimate (denominator TP+FN).
    pub sensitivity: f64,
    /// Standard error of the PVP estimate (denominator TP+FP).
    pub pvp: f64,
    /// Standard error of the specificity estimate (denominator TN+FP).
    pub specificity: f64,
}

/// Computes binomial standard errors for the rates of `m`.
///
/// Rates with empty denominators get an error of `0.0` (there is no
/// estimate to be uncertain about; callers should treat such rates as
/// undefined).
///
/// # Example
///
/// ```
/// use csp_metrics::{ConfusionMatrix, precision};
/// let m = ConfusionMatrix { tp: 50, fp: 50, tn: 800, fn_: 100 };
/// let e = precision::rate_errors(&m);
/// assert!(e.pvp > e.specificity); // far fewer positive predictions than negatives
/// ```
pub fn rate_errors(m: &ConfusionMatrix) -> RateErrors {
    let s = m.screening();
    RateErrors {
        prevalence: binom_se(s.prevalence, m.decisions()),
        sensitivity: binom_se(s.sensitivity, m.actual_positives()),
        pvp: binom_se(s.pvp, m.predicted_positives()),
        specificity: binom_se(s.specificity, m.tn + m.fp),
    }
}

/// The PVP a test with the given `sensitivity` and `specificity` would
/// achieve at a different `prevalence` — Gastwirth's core identity (Bayes'
/// rule):
///
/// `PVP = sens·prev / (sens·prev + (1-spec)·(1-prev))`
///
/// This is how the paper's observation plays out quantitatively: as
/// prevalence falls, the same test yields a rapidly falling PVP, so
/// low-prevalence sharing demands very high specificity.
///
/// # Example
///
/// ```
/// use csp_metrics::precision::pvp_at_prevalence;
/// let high = pvp_at_prevalence(0.9, 0.95, 0.5);
/// let low = pvp_at_prevalence(0.9, 0.95, 0.05);
/// assert!(high > 0.9 && low < 0.5);
/// ```
///
/// # Panics
///
/// Panics if any argument is outside `[0, 1]`.
pub fn pvp_at_prevalence(sensitivity: f64, specificity: f64, prevalence: f64) -> f64 {
    for (name, v) in [
        ("sensitivity", sensitivity),
        ("specificity", specificity),
        ("prevalence", prevalence),
    ] {
        assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
    }
    let num = sensitivity * prevalence;
    let den = num + (1.0 - specificity) * (1.0 - prevalence);
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

fn binom_se(p: f64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        (p * (1.0 - p) / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_shrink_with_sample_size() {
        let small = ConfusionMatrix {
            tp: 5,
            fp: 5,
            tn: 80,
            fn_: 10,
        };
        let big = ConfusionMatrix {
            tp: 500,
            fp: 500,
            tn: 8000,
            fn_: 1000,
        };
        assert!(rate_errors(&small).pvp > rate_errors(&big).pvp);
        assert!(rate_errors(&small).prevalence > rate_errors(&big).prevalence);
    }

    #[test]
    fn zero_counts_have_zero_errors() {
        let e = rate_errors(&ConfusionMatrix::default());
        assert_eq!(e.prevalence, 0.0);
        assert_eq!(e.pvp, 0.0);
    }

    #[test]
    fn pvp_falls_with_prevalence() {
        let mut last = 1.0;
        for prev in [0.5, 0.2, 0.1, 0.05, 0.01] {
            let pvp = pvp_at_prevalence(0.8, 0.95, prev);
            assert!(pvp < last, "PVP must fall as prevalence falls");
            last = pvp;
        }
    }

    #[test]
    fn pvp_identity_matches_confusion_matrix() {
        // Build a matrix, then check Bayes' identity reproduces its PVP.
        let m = ConfusionMatrix {
            tp: 120,
            fp: 30,
            tn: 700,
            fn_: 150,
        };
        let s = m.screening();
        let pvp = pvp_at_prevalence(s.sensitivity, s.specificity, s.prevalence);
        assert!((pvp - s.pvp).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1]")]
    fn pvp_rejects_bad_rates() {
        pvp_at_prevalence(1.2, 0.5, 0.5);
    }

    #[test]
    fn degenerate_test_has_zero_pvp() {
        assert_eq!(pvp_at_prevalence(0.0, 1.0, 0.5), 0.0);
    }
}
