//! Paired comparison of two predictors on the same decisions.
//!
//! Screening rates alone cannot say whether scheme A *significantly*
//! outperforms scheme B: the two are evaluated on exactly the same
//! decisions, so the right tool is a paired analysis of their
//! disagreements — McNemar's test, the standard companion of the
//! screening-test statistics the paper imports.

use std::fmt;

/// Per-decision agreement counts for two predictors A and B.
///
/// A decision is *correct* for a predictor when its bit matches the actual
/// bit (true positive or true negative).
///
/// # Example
///
/// ```
/// use csp_metrics::compare::PairedComparison;
/// let mut p = PairedComparison::default();
/// p.record(true, true);
/// p.record(true, false);
/// p.record(false, false);
/// assert_eq!(p.total(), 3);
/// assert_eq!(p.only_a, 1);
/// assert!(p.accuracy_a() > p.accuracy_b());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairedComparison {
    /// Decisions both predictors got right.
    pub both_correct: u64,
    /// Decisions only A got right (A's wins).
    pub only_a: u64,
    /// Decisions only B got right (B's wins).
    pub only_b: u64,
    /// Decisions both predictors got wrong.
    pub both_wrong: u64,
}

impl PairedComparison {
    /// Records one decision's outcome for both predictors.
    #[inline]
    pub fn record(&mut self, a_correct: bool, b_correct: bool) {
        match (a_correct, b_correct) {
            (true, true) => self.both_correct += 1,
            (true, false) => self.only_a += 1,
            (false, true) => self.only_b += 1,
            (false, false) => self.both_wrong += 1,
        }
    }

    /// Total decisions compared.
    pub fn total(&self) -> u64 {
        self.both_correct + self.only_a + self.only_b + self.both_wrong
    }

    /// A's overall per-bit accuracy.
    pub fn accuracy_a(&self) -> f64 {
        ratio(self.both_correct + self.only_a, self.total())
    }

    /// B's overall per-bit accuracy.
    pub fn accuracy_b(&self) -> f64 {
        ratio(self.both_correct + self.only_b, self.total())
    }

    /// McNemar's chi-squared statistic (with continuity correction) over
    /// the discordant pairs. Values above ~3.84 reject "A and B err
    /// equally often" at the 5% level; above ~6.63 at the 1% level.
    /// Returns 0 when there are no disagreements.
    pub fn mcnemar_chi2(&self) -> f64 {
        let n = self.only_a + self.only_b;
        if n == 0 {
            return 0.0;
        }
        let diff = self.only_a.abs_diff(self.only_b) as f64;
        let corrected = (diff - 1.0).max(0.0);
        corrected * corrected / n as f64
    }

    /// `true` when the disagreement pattern is significant at the 5%
    /// level (chi-squared with one degree of freedom).
    pub fn significant_at_5pct(&self) -> bool {
        self.mcnemar_chi2() > 3.841
    }

    /// Merges another comparison's counts (e.g. across benchmarks).
    pub fn merge(&mut self, other: &PairedComparison) {
        self.both_correct += other.both_correct;
        self.only_a += other.only_a;
        self.only_b += other.only_b;
        self.both_wrong += other.both_wrong;
    }
}

impl fmt::Display for PairedComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "A-wins={} B-wins={} both-right={} both-wrong={} (chi2={:.2})",
            self.only_a,
            self.only_b,
            self.both_correct,
            self.both_wrong,
            self.mcnemar_chi2()
        )
    }
}

/// Wilson score interval for a binomial proportion at ~95% confidence —
/// sturdier than the normal approximation at the extreme rates sharing
/// predictors produce. Returns `(low, high)`, or `(0, 1)` when `n == 0`.
///
/// # Example
///
/// ```
/// let (lo, hi) = csp_metrics::compare::wilson_interval(90, 100);
/// assert!(lo > 0.8 && hi < 0.96);
/// ```
pub fn wilson_interval(successes: u64, n: u64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.96f64;
    let n_f = n as f64;
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_f;
    let centre = p + z2 / (2.0 * n_f);
    let margin = z * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_all_four_cells() {
        let mut p = PairedComparison::default();
        p.record(true, true);
        p.record(true, false);
        p.record(false, true);
        p.record(false, false);
        assert_eq!(p.both_correct, 1);
        assert_eq!(p.only_a, 1);
        assert_eq!(p.only_b, 1);
        assert_eq!(p.both_wrong, 1);
        assert_eq!(p.total(), 4);
        assert!((p.accuracy_a() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_disagreement_is_insignificant() {
        let p = PairedComparison {
            both_correct: 100,
            only_a: 20,
            only_b: 20,
            both_wrong: 10,
        };
        assert!(p.mcnemar_chi2() < 0.1);
        assert!(!p.significant_at_5pct());
    }

    #[test]
    fn lopsided_disagreement_is_significant() {
        let p = PairedComparison {
            both_correct: 100,
            only_a: 40,
            only_b: 5,
            both_wrong: 10,
        };
        assert!(p.significant_at_5pct(), "chi2 {}", p.mcnemar_chi2());
        assert!(p.accuracy_a() > p.accuracy_b());
    }

    #[test]
    fn no_disagreement_chi2_zero() {
        let p = PairedComparison {
            both_correct: 50,
            both_wrong: 2,
            ..Default::default()
        };
        assert_eq!(p.mcnemar_chi2(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PairedComparison {
            only_a: 3,
            ..Default::default()
        };
        a.merge(&PairedComparison {
            only_b: 4,
            both_correct: 1,
            ..Default::default()
        });
        assert_eq!(a.only_a, 3);
        assert_eq!(a.only_b, 4);
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn wilson_interval_properties() {
        let (lo, hi) = wilson_interval(0, 0);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(50, 100);
        assert!(lo < 0.5 && hi > 0.5);
        // Shrinks with n.
        let (lo_small, hi_small) = wilson_interval(5, 10);
        let (lo_big, hi_big) = wilson_interval(500, 1000);
        assert!(hi_big - lo_big < hi_small - lo_small);
        // Extreme proportions stay in [0, 1].
        let (lo, hi) = wilson_interval(100, 100);
        assert!(lo > 0.9 && hi <= 1.0);
        let (lo, _) = wilson_interval(0, 100);
        assert_eq!(lo, 0.0);
    }
}
