//! Derived screening-test rates (paper Table 2, plus footnote 7).

use crate::ConfusionMatrix;
use std::fmt;

/// The screening-test rates derived from a [`ConfusionMatrix`].
///
/// All rates are in `[0, 1]`; a rate whose denominator is zero is reported
/// as `0.0` (an empty test predicts nothing and captures nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Screening {
    /// `(TP+FN) / (TP+TN+FP+FN)` — how much sharing actually takes place;
    /// the upper bound on the benefit of any prediction scheme.
    pub prevalence: f64,
    /// `TP / (TP+FN)` — how well the test predicts sharing when sharing
    /// does take place.
    pub sensitivity: f64,
    /// `TP / (TP+FP)` — predictive value of a positive test: the fraction
    /// of data-forwarding traffic that is useful. Prior studies called this
    /// "prediction accuracy".
    pub pvp: f64,
    /// `TN / (TN+FP)` — how well the test predicts non-sharing (footnote 7;
    /// not used by the paper's tables, provided for completeness).
    pub specificity: f64,
    /// `TN / (TN+FN)` — predictive value of a negative test (footnote 7).
    pub pvn: f64,
}

impl Screening {
    /// Computes the rates from raw counts.
    pub fn from_confusion(m: &ConfusionMatrix) -> Self {
        Screening {
            prevalence: ratio(m.tp + m.fn_, m.decisions()),
            sensitivity: ratio(m.tp, m.tp + m.fn_),
            pvp: ratio(m.tp, m.tp + m.fp),
            specificity: ratio(m.tn, m.tn + m.fp),
            pvn: ratio(m.tn, m.tn + m.fn_),
        }
    }

    /// Youden's J statistic (`sensitivity + specificity - 1`), a prevalence-
    /// independent summary of test quality in `[-1, 1]`.
    pub fn youden_j(&self) -> f64 {
        self.sensitivity + self.specificity - 1.0
    }

    /// Arithmetic mean of a set of screening results — the paper's
    /// cross-benchmark aggregation ("arithmetic average over all
    /// benchmarks", Section 5.4.2). Returns `None` for an empty slice.
    pub fn mean(results: &[Screening]) -> Option<Screening> {
        if results.is_empty() {
            return None;
        }
        let n = results.len() as f64;
        let mut acc = Screening::default();
        for r in results {
            acc.prevalence += r.prevalence;
            acc.sensitivity += r.sensitivity;
            acc.pvp += r.pvp;
            acc.specificity += r.specificity;
            acc.pvn += r.pvn;
        }
        Some(Screening {
            prevalence: acc.prevalence / n,
            sensitivity: acc.sensitivity / n,
            pvp: acc.pvp / n,
            specificity: acc.specificity / n,
            pvn: acc.pvn / n,
        })
    }
}

impl fmt::Display for Screening {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prev={:.3} sens={:.3} pvp={:.3} spec={:.3} pvn={:.3}",
            self.prevalence, self.sensitivity, self.pvp, self.specificity, self.pvn
        )
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::{NodeId, SharingBitmap};
    use proptest::prelude::*;

    fn matrix(tp: u64, fp: u64, tn: u64, fn_: u64) -> ConfusionMatrix {
        ConfusionMatrix { tp, fp, tn, fn_ }
    }

    #[test]
    fn known_rates() {
        let s = matrix(30, 10, 50, 10).screening();
        assert!((s.prevalence - 0.4).abs() < 1e-12);
        assert!((s.sensitivity - 0.75).abs() < 1e-12);
        assert!((s.pvp - 0.75).abs() < 1e-12);
        assert!((s.specificity - 50.0 / 60.0).abs() < 1e-12);
        assert!((s.pvn - 50.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let s = matrix(0, 0, 0, 0).screening();
        assert_eq!(s.prevalence, 0.0);
        assert_eq!(s.sensitivity, 0.0);
        assert_eq!(s.pvp, 0.0);
        assert_eq!(s.specificity, 0.0);
        assert_eq!(s.pvn, 0.0);
    }

    #[test]
    fn perfect_test() {
        let s = matrix(10, 0, 90, 0).screening();
        assert_eq!(s.sensitivity, 1.0);
        assert_eq!(s.pvp, 1.0);
        assert!((s.youden_j() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_averages_componentwise() {
        let a = matrix(10, 0, 90, 0).screening(); // sens 1.0
        let b = matrix(0, 0, 90, 10).screening(); // sens 0.0
        let m = Screening::mean(&[a, b]).unwrap();
        assert!((m.sensitivity - 0.5).abs() < 1e-12);
        assert!(Screening::mean(&[]).is_none());
    }

    proptest! {
        /// All rates stay within [0, 1] for any recorded decisions.
        #[test]
        fn prop_rates_bounded(records in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..50)) {
            let mut m = ConfusionMatrix::default();
            for (p, a) in records {
                m.record(SharingBitmap::from_bits(p), SharingBitmap::from_bits(a), 16);
            }
            let s = m.screening();
            for rate in [s.prevalence, s.sensitivity, s.pvp, s.specificity, s.pvn] {
                prop_assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range for {m}");
            }
        }

        /// Predicting everything gives sensitivity 1; predicting nothing
        /// gives specificity 1.
        #[test]
        fn prop_degenerate_predictors(a: u64) {
            let mut all = ConfusionMatrix::default();
            all.record(SharingBitmap::all(16), SharingBitmap::from_bits(a), 16);
            let mut none = ConfusionMatrix::default();
            none.record(SharingBitmap::empty(), SharingBitmap::from_bits(a), 16);
            let actual = SharingBitmap::from_bits(a).masked(16);
            if !actual.is_empty() {
                prop_assert_eq!(all.screening().sensitivity, 1.0);
            }
            if actual.count() < 16 {
                prop_assert_eq!(none.screening().specificity, 1.0);
            }
        }
    }

    #[test]
    fn display_shows_rates() {
        let s = matrix(1, 1, 1, 1).screening();
        let out = s.to_string();
        assert!(out.contains("sens=0.500"));
        assert!(out.contains("pvp=0.500"));
    }

    // Keep NodeId imported for the doc-test parity with the crate docs.
    #[test]
    fn crate_doc_example_counts() {
        let mut m = ConfusionMatrix::default();
        let predicted = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
        let actual = SharingBitmap::from_nodes(&[NodeId(2), NodeId(3)]);
        m.record(predicted, actual, 16);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (1, 1, 1, 13));
    }
}
