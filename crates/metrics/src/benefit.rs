//! Closed-form benefit model: from screening rates to expected cycles and
//! messages per decision.
//!
//! The empirical forwarding estimator in `csp-sim` replays a concrete
//! trace; this module is its analytic companion. Given only a predictor's
//! screening rates and two machine constants, it computes the expected
//! latency saved and traffic spent *per decision* — the form in which the
//! paper's summary reasons about the bandwidth-latency trade-off ("with
//! more communications network bandwidth, we could use a
//! higher-sensitivity predictor").

use crate::Screening;

/// Machine constants of the benefit model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BenefitModel {
    /// Cycles a read miss costs when served by the home (the paper's
    /// remote latency, 133, for most readers).
    pub miss_cycles: f64,
    /// Cycles a read costs when the data was forwarded ahead of time (an
    /// L2 hit).
    pub hit_cycles: f64,
    /// Network messages one forward costs (≥ 1; use the torus mean hop
    /// count for hop-weighted accounting).
    pub msgs_per_forward: f64,
}

impl BenefitModel {
    /// The paper-machine defaults: 133-cycle remote miss, 8-cycle L2 hit,
    /// 2.13 mean hops per forward on the 4x4 torus.
    pub fn paper_16_node() -> Self {
        BenefitModel {
            miss_cycles: 133.0,
            hit_cycles: 8.0,
            msgs_per_forward: 32.0 / 15.0,
        }
    }

    /// Expected miss-latency cycles saved per decision:
    /// `prevalence x sensitivity x (miss - hit)`.
    ///
    /// Prevalence bounds this: even a perfect predictor saves only
    /// `prevalence x (miss - hit)` — the paper's "prevalence bounds the
    /// total possible benefit" made quantitative.
    pub fn cycles_saved_per_decision(&self, s: &Screening) -> f64 {
        s.prevalence * s.sensitivity * (self.miss_cycles - self.hit_cycles)
    }

    /// Expected forwarding messages per decision: every predicted-positive
    /// decision sends one forward. Derived from the rates:
    /// `TP/N + FP/N = prev x sens + (1 - prev) x (1 - specificity)`.
    pub fn messages_per_decision(&self, s: &Screening) -> f64 {
        let tp_rate = s.prevalence * s.sensitivity;
        let fp_rate = (1.0 - s.prevalence) * (1.0 - s.specificity);
        (tp_rate + fp_rate) * self.msgs_per_forward
    }

    /// Cycles saved per message spent — the exchange rate between the two
    /// resources; `0` when the scheme sends nothing.
    pub fn cycles_per_message(&self, s: &Screening) -> f64 {
        let msgs = self.messages_per_decision(s);
        if msgs == 0.0 {
            0.0
        } else {
            self.cycles_saved_per_decision(s) / msgs
        }
    }

    /// The savings a *perfect* predictor would reach at this prevalence —
    /// the upper bound to report alongside any scheme's actual savings.
    pub fn oracle_cycles_per_decision(&self, prevalence: f64) -> f64 {
        prevalence * (self.miss_cycles - self.hit_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConfusionMatrix;

    fn screening(tp: u64, fp: u64, tn: u64, fn_: u64) -> Screening {
        ConfusionMatrix { tp, fp, tn, fn_ }.screening()
    }

    #[test]
    fn oracle_bounds_any_scheme() {
        let model = BenefitModel::paper_16_node();
        for (tp, fp, tn, fn_) in [(10, 5, 80, 5), (1, 0, 98, 1), (16, 16, 60, 8)] {
            let s = screening(tp, fp, tn, fn_);
            assert!(
                model.cycles_saved_per_decision(&s)
                    <= model.oracle_cycles_per_decision(s.prevalence) + 1e-12
            );
        }
    }

    #[test]
    fn perfect_predictor_attains_the_oracle() {
        let model = BenefitModel::paper_16_node();
        let s = screening(10, 0, 90, 0);
        assert!(
            (model.cycles_saved_per_decision(&s) - model.oracle_cycles_per_decision(s.prevalence))
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn message_rate_matches_raw_counts() {
        let model = BenefitModel {
            miss_cycles: 100.0,
            hit_cycles: 0.0,
            msgs_per_forward: 1.0,
        };
        let m = ConfusionMatrix {
            tp: 30,
            fp: 20,
            tn: 40,
            fn_: 10,
        };
        let s = m.screening();
        let expected = m.predicted_positives() as f64 / m.decisions() as f64;
        assert!((model.messages_per_decision(&s) - expected).abs() < 1e-12);
    }

    #[test]
    fn high_pvp_scheme_has_better_exchange_rate() {
        let model = BenefitModel::paper_16_node();
        let precise = screening(30, 3, 900, 70); // inter-like
        let broad = screening(70, 130, 770, 30); // union-like
        assert!(precise.pvp > broad.pvp);
        assert!(
            model.cycles_per_message(&precise) > model.cycles_per_message(&broad),
            "sure bets buy more latency per message"
        );
        // ...but the broad scheme saves more total latency.
        assert!(
            model.cycles_saved_per_decision(&broad) > model.cycles_saved_per_decision(&precise)
        );
    }

    #[test]
    fn silent_scheme_has_zero_rates() {
        let model = BenefitModel::paper_16_node();
        let s = screening(0, 0, 90, 10);
        assert_eq!(model.messages_per_decision(&s), 0.0);
        assert_eq!(model.cycles_per_message(&s), 0.0);
    }
}
