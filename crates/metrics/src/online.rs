//! Lock-free online confusion counters for concurrent predictor serving.
//!
//! An offline experiment owns its [`ConfusionMatrix`] exclusively; a
//! *serving* deployment (see the `csp-serve` crate) scores decisions on
//! shard worker threads while monitoring code wants live
//! prevalence/sensitivity/PVP snapshots. [`OnlineConfusion`] is the
//! bridge: each cell is an atomic counter, writers record without any
//! lock, and readers take a [`snapshot`](OnlineConfusion::snapshot) at
//! any time. Per-shard snapshots merge with plain
//! [`ConfusionMatrix`] addition, which commutes — so the merged totals
//! are exactly what a single sequential matrix would have counted, no
//! matter how decisions were spread over shards.

use crate::{ConfusionMatrix, Screening};
use csp_trace::SharingBitmap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`ConfusionMatrix`] whose cells are independently updatable atomics.
///
/// Single-writer-per-shard deployments get exact counts; multi-writer use
/// is also sound (every increment lands) but a snapshot taken mid-record
/// may observe a decision split across cells. Monotonicity always holds:
/// later snapshots dominate earlier ones cell-wise.
///
/// # Example
///
/// ```
/// use csp_metrics::OnlineConfusion;
/// use csp_trace::{NodeId, SharingBitmap};
///
/// let online = OnlineConfusion::default();
/// let predicted = SharingBitmap::from_nodes(&[NodeId(1)]);
/// let actual = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
/// online.record(predicted, actual, 16);
/// let m = online.snapshot();
/// assert_eq!((m.tp, m.fn_), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct OnlineConfusion {
    tp: AtomicU64,
    fp: AtomicU64,
    tn: AtomicU64,
    fn_: AtomicU64,
}

impl OnlineConfusion {
    /// Scores one decision, exactly as [`ConfusionMatrix::record`] would.
    ///
    /// Takes `&self`: safe to call from any number of threads.
    #[inline]
    pub fn record(&self, predicted: SharingBitmap, actual: SharingBitmap, nodes: usize) {
        // Delegate the cell arithmetic to the offline matrix so the two
        // paths can never drift apart.
        let mut m = ConfusionMatrix::default();
        m.record(predicted, actual, nodes);
        self.add(&m);
    }

    /// Adds a whole pre-computed matrix (e.g. a batch scored locally).
    #[inline]
    pub fn add(&self, m: &ConfusionMatrix) {
        self.tp.fetch_add(m.tp, Ordering::Relaxed);
        self.fp.fetch_add(m.fp, Ordering::Relaxed);
        self.tn.fetch_add(m.tn, Ordering::Relaxed);
        self.fn_.fetch_add(m.fn_, Ordering::Relaxed);
    }

    /// Overwrites every cell with the counts in `m`.
    ///
    /// The single-writer publishing primitive behind shard supervision:
    /// a restarted worker republishes its *recomputed* absolute totals,
    /// so counters never double-count work replayed after a panic. With
    /// one writer per instance, readers still see monotone snapshots.
    #[inline]
    pub fn store(&self, m: &ConfusionMatrix) {
        self.tp.store(m.tp, Ordering::Relaxed);
        self.fp.store(m.fp, Ordering::Relaxed);
        self.tn.store(m.tn, Ordering::Relaxed);
        self.fn_.store(m.fn_, Ordering::Relaxed);
    }

    /// The current counts as an ordinary mergeable [`ConfusionMatrix`].
    pub fn snapshot(&self) -> ConfusionMatrix {
        ConfusionMatrix {
            tp: self.tp.load(Ordering::Relaxed),
            fp: self.fp.load(Ordering::Relaxed),
            tn: self.tn.load(Ordering::Relaxed),
            fn_: self.fn_.load(Ordering::Relaxed),
        }
    }

    /// Screening rates of the current snapshot.
    pub fn screening(&self) -> Screening {
        self.snapshot().screening()
    }
}

/// Merges per-shard snapshots into system-wide totals.
///
/// Plain summation — kept as a named function so call sites document that
/// the merge is exact (integer addition commutes over any sharding).
pub fn merge_snapshots<I: IntoIterator<Item = ConfusionMatrix>>(shards: I) -> ConfusionMatrix {
    shards.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use csp_trace::NodeId;

    fn bm(nodes: &[u8]) -> SharingBitmap {
        nodes.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn matches_offline_record() {
        let online = OnlineConfusion::default();
        let mut offline = ConfusionMatrix::default();
        let cases = [
            (bm(&[1, 2]), bm(&[2, 3])),
            (bm(&[]), bm(&[0])),
            (bm(&[5]), bm(&[5])),
        ];
        for (p, a) in cases {
            online.record(p, a, 16);
            offline.record(p, a, 16);
        }
        assert_eq!(online.snapshot(), offline);
        assert_eq!(online.screening(), offline.screening());
    }

    #[test]
    fn sharded_merge_equals_sequential() {
        // Score 100 decisions round-robin over 4 shards; the merged counts
        // must be byte-identical to one sequential matrix.
        let shards: Vec<OnlineConfusion> = (0..4).map(|_| OnlineConfusion::default()).collect();
        let mut sequential = ConfusionMatrix::default();
        for i in 0..100u8 {
            let p = bm(&[i % 16]);
            let a = bm(&[(i + 1) % 16, i % 16]);
            shards[i as usize % 4].record(p, a, 16);
            sequential.record(p, a, 16);
        }
        let merged = merge_snapshots(shards.iter().map(|s| s.snapshot()));
        assert_eq!(merged, sequential);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let online = OnlineConfusion::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        online.record(bm(&[1]), bm(&[1]), 4);
                    }
                });
            }
        });
        let m = online.snapshot();
        assert_eq!(m.tp, 4000);
        assert_eq!(m.decisions(), 16000);
    }

    #[test]
    fn store_overwrites_rather_than_accumulates() {
        let online = OnlineConfusion::default();
        let mut batch = ConfusionMatrix::default();
        batch.record(bm(&[0]), bm(&[0, 1]), 4);
        online.add(&batch);
        online.add(&batch);
        online.store(&batch);
        assert_eq!(online.snapshot(), batch);
    }

    #[test]
    fn add_accumulates_batches() {
        let online = OnlineConfusion::default();
        let mut batch = ConfusionMatrix::default();
        batch.record(bm(&[0]), bm(&[0, 1]), 4);
        online.add(&batch);
        online.add(&batch);
        assert_eq!(online.snapshot(), batch + batch);
    }
}
