//! Screening-test statistics for sharing prediction.
//!
//! Section 4 of the paper imports the vocabulary of epidemiological
//! screening and polygraph testing (after Gastwirth 1987) to score sharing
//! predictors. Every per-node decision falls into one of four cells of a
//! confusion matrix ([`ConfusionMatrix`]); the derived [`Screening`] rates
//! are
//!
//! * **prevalence** — how much sharing actually happens; the upper bound on
//!   any predictor's benefit,
//! * **sensitivity** — the fraction of real sharing the predictor captured,
//! * **PVP** (predictive value of a positive test) — the fraction of
//!   forwarding traffic that was useful; the only metric prior studies
//!   reported,
//! * plus **specificity** and **PVN**, which the paper names but does not
//!   use, and Gastwirth-style standard errors ([`precision`]).
//!
//! # Example
//!
//! ```
//! use csp_metrics::ConfusionMatrix;
//! use csp_trace::{NodeId, SharingBitmap};
//!
//! let mut m = ConfusionMatrix::default();
//! let predicted = SharingBitmap::from_nodes(&[NodeId(1), NodeId(2)]);
//! let actual = SharingBitmap::from_nodes(&[NodeId(2), NodeId(3)]);
//! m.record(predicted, actual, 16);
//! assert_eq!(m.tp, 1); // node 2
//! assert_eq!(m.fp, 1); // node 1
//! assert_eq!(m.fn_, 1); // node 3
//! assert_eq!(m.tn, 13);
//! let s = m.screening();
//! assert!((s.sensitivity - 0.5).abs() < 1e-12);
//! assert!((s.pvp - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benefit;
pub mod compare;
mod confusion;
pub mod online;
pub mod precision;
mod screening;

pub use confusion::ConfusionMatrix;
pub use online::OnlineConfusion;
pub use screening::Screening;
