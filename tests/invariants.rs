//! Cross-crate invariants, including the paper's own theorems:
//!
//! * Section 3.4: "for pure address-based schemes the direct, forwarded
//!   and ordered update schemes are equivalent";
//! * union predictions contain intersection predictions at equal
//!   index/depth/update, so union sensitivity dominates;
//! * depth monotonicity: deeper intersection never gains sensitivity,
//!   deeper union never loses it.

use csp::core::{engine, IndexSpec, PredictionFunction, Scheme, UpdateMode};
use csp::workloads::{Benchmark, WorkloadConfig};
use csp_trace::Trace;
use proptest::prelude::*;

fn small_trace(bench: Benchmark) -> Trace {
    WorkloadConfig::new(bench).scale(0.03).generate_trace().0
}

#[test]
fn update_modes_coincide_for_pure_address_indexing() {
    // Full-width address indexing on protocol-generated traces: the three
    // update mechanisms must produce identical confusion matrices.
    for bench in [Benchmark::Mp3d, Benchmark::Em3d, Benchmark::Water] {
        let trace = small_trace(bench);
        let ix = IndexSpec::new(false, 0, true, 24);
        for func in [PredictionFunction::Union, PredictionFunction::Inter] {
            for depth in [1, 2, 4] {
                let results: Vec<_> = UpdateMode::ALL
                    .iter()
                    .map(|&u| engine::run_scheme(&trace, &Scheme::new(func, ix, depth, u)))
                    .collect();
                assert_eq!(
                    results[0], results[1],
                    "{bench}/{func}/{depth}: direct vs forwarded"
                );
                assert_eq!(
                    results[0], results[2],
                    "{bench}/{func}/{depth}: direct vs ordered"
                );
            }
        }
    }
}

#[test]
fn update_modes_differ_for_instruction_indexing() {
    // The converse sanity check: with pid+pc indexing the heuristics are
    // genuinely different mechanisms on a migratory workload.
    let trace = small_trace(Benchmark::Mp3d);
    let ix = IndexSpec::new(true, 8, false, 0);
    let run = |u| engine::run_scheme(&trace, &Scheme::new(PredictionFunction::Union, ix, 2, u));
    let direct = run(UpdateMode::Direct);
    let forwarded = run(UpdateMode::Forwarded);
    assert_ne!(
        direct, forwarded,
        "direct and forwarded should diverge on migratory sharing"
    );
}

#[test]
fn union_sensitivity_dominates_inter_everywhere() {
    for bench in Benchmark::ALL {
        let trace = small_trace(bench);
        for ix in [
            IndexSpec::new(true, 8, false, 0),
            IndexSpec::new(false, 0, true, 8),
            IndexSpec::new(true, 4, true, 4),
        ] {
            for update in UpdateMode::ALL {
                for depth in [2, 4] {
                    let u = engine::run_scheme(
                        &trace,
                        &Scheme::new(PredictionFunction::Union, ix, depth, update),
                    )
                    .screening();
                    let i = engine::run_scheme(
                        &trace,
                        &Scheme::new(PredictionFunction::Inter, ix, depth, update),
                    )
                    .screening();
                    assert!(
                        u.sensitivity >= i.sensitivity - 1e-12,
                        "{bench}/{ix}/{update}/d{depth}: union sens {} < inter sens {}",
                        u.sensitivity,
                        i.sensitivity
                    );
                }
            }
        }
    }
}

#[test]
fn depth_monotonicity_of_sensitivity() {
    let trace = small_trace(Benchmark::Barnes);
    let ix = IndexSpec::new(true, 8, false, 0);
    let fam = engine::run_history_family(&trace, ix, UpdateMode::Direct, 4);
    for d in 0..3 {
        let u_shallow = fam.union[d].screening().sensitivity;
        let u_deep = fam.union[d + 1].screening().sensitivity;
        assert!(
            u_deep >= u_shallow - 1e-12,
            "union sensitivity fell from {u_shallow} to {u_deep} at depth {}",
            d + 2
        );
        let i_shallow = fam.inter[d].screening().sensitivity;
        let i_deep = fam.inter[d + 1].screening().sensitivity;
        assert!(
            i_deep <= i_shallow + 1e-12,
            "inter sensitivity rose from {i_shallow} to {i_deep} at depth {}",
            d + 2
        );
    }
}

#[test]
fn prevalence_is_scheme_independent() {
    let trace = small_trace(Benchmark::Gauss);
    let mut seen = Vec::new();
    for spec in [
        "last()1",
        "inter(pid+pc8)4",
        "union(dir+add8)2[ordered]",
        "pas(pid)2",
    ] {
        let scheme: Scheme = spec.parse().unwrap();
        seen.push(engine::run_scheme(&trace, &scheme).screening().prevalence);
    }
    for w in seen.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-12,
            "prevalence must not depend on the scheme"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random hand-built traces: confusion counts always partition the
    /// decision space, for every scheme family and update mode.
    #[test]
    fn prop_decisions_partition(
        events in proptest::collection::vec((0u8..16, 0u32..64, 0u64..32, any::<u16>()), 1..200),
        spec in prop_oneof![
            Just("last(pid+pc4)1"),
            Just("inter(pid+add4)3[forwarded]"),
            Just("union(dir+add4)2[ordered]"),
            Just("pas(pid)1"),
            Just("overlap-last(pc6)"),
        ],
    ) {
        use csp_trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent};
        let mut trace = Trace::new(16);
        let mut last_writer: std::collections::HashMap<u64, (NodeId, Pc)> = Default::default();
        for (w, pc, line, inv) in events {
            let writer = NodeId(w);
            let prev = last_writer.get(&line).copied();
            let feedback = SharingBitmap::from_bits(u64::from(inv)).masked(16).without(writer);
            trace.push(SharingEvent::new(writer, Pc(pc), LineAddr(line), NodeId((line % 16) as u8), feedback, prev));
            last_writer.insert(line, (writer, Pc(pc)));
        }
        let scheme: Scheme = spec.parse().unwrap();
        let m = engine::run_scheme(&trace, &scheme);
        prop_assert_eq!(m.decisions(), trace.len() as u64 * 16);
        let s = m.screening();
        for rate in [s.prevalence, s.sensitivity, s.pvp, s.specificity, s.pvn] {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    /// The engine is deterministic: same trace, same scheme, same counts.
    #[test]
    fn prop_engine_deterministic(seed in 0u64..32) {
        let (trace, _) = WorkloadConfig::new(Benchmark::Water)
            .scale(0.01)
            .seed(seed)
            .generate_trace();
        let scheme: Scheme = "inter(pid+pc6+add4)2[forwarded]".parse().unwrap();
        prop_assert_eq!(
            engine::run_scheme(&trace, &scheme),
            engine::run_scheme(&trace, &scheme)
        );
    }
}
