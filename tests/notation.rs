//! The paper's scheme notation (Section 3.5) and cost model (Section 5.4),
//! checked against every scheme string and size the paper prints.

use csp::core::{IndexSpec, PredictionFunction, Scheme, UpdateMode};

/// Every (scheme, size) pair quoted in the paper's Tables 7–11.
const PAPER_SIZES: &[(&str, u32)] = &[
    // Table 7.
    ("last(pid+pc8)1", 16),
    ("inter(pid+pc8)2", 17),
    ("last(pid+mem8)", 16),
    // Table 8.
    ("inter(pid+add6)4", 16),
    ("inter(pid+pc2+add6)4", 18),
    ("inter(pid+add8)4", 18),
    ("inter(pid+pc4+add6)4", 20),
    ("inter(pid+add10)4", 20),
    ("inter(pid+pc2+add8)4", 20),
    ("inter(pid+add4)4", 14),
    ("inter(pid+pc6+add6)4", 22),
    ("inter(pid+add8)3", 18),
    ("inter(pid+pc4+add4)4", 18),
    // Table 9.
    ("inter(pid+pc8+add6)4", 24),
    ("inter(pid+pc6+dir+add4)4", 24),
    ("inter(pid+pc10+add4)4", 24),
    ("inter(pid+pc4+dir+add4)4", 22),
    ("inter(pid+pc4+add6)4", 20),
    ("inter(pid+pc6+add8)4", 24),
    ("inter(pid+pc8+add4)4", 22),
    ("inter(pid+pc4+dir+add6)4", 24),
    ("inter(pid+pc6+add4)4", 20),
    // Table 10.
    ("union(dir+add14)4", 24),
    ("union(add16)4", 22),
    ("union(dir+add12)4", 22),
    ("union(dir+add10)4", 20),
    ("union(dir+add2)4", 12),
    ("union(dir+add8)4", 18),
    ("union(pc2+dir+add6)4", 18),
    ("union(add14)4", 20),
    ("union(pc4+dir)4", 14),
    ("union(pc2+dir+add2)4", 14),
    // Table 11.
    ("union(pid+dir+add4)4", 18),
    ("union(pid+dir+add2)4", 16),
    ("union(pid+dir+add6)4", 20),
    ("union(pid+add6)4", 16),
];

#[test]
fn every_paper_scheme_parses_with_its_printed_size() {
    for &(spec, size) in PAPER_SIZES {
        let scheme: Scheme = spec.parse().unwrap_or_else(|e| panic!("{spec}: {e}"));
        assert_eq!(
            scheme.size_log2_bits(16),
            size,
            "{spec}: cost model disagrees with the paper"
        );
    }
}

#[test]
fn canonical_display_reparses_to_the_same_scheme() {
    for &(spec, _) in PAPER_SIZES {
        let scheme: Scheme = spec.parse().unwrap();
        let round: Scheme = scheme.to_string().parse().unwrap();
        assert_eq!(scheme, round, "roundtrip failed for {spec}");
    }
}

#[test]
fn update_suffixes_parse() {
    let d: Scheme = "inter(pid)2[direct]".parse().unwrap();
    let f: Scheme = "inter(pid)2[forwarded]".parse().unwrap();
    let o: Scheme = "inter(pid)2[ordered]".parse().unwrap();
    assert_eq!(d.update, UpdateMode::Direct);
    assert_eq!(f.update, UpdateMode::Forwarded);
    assert_eq!(o.update, UpdateMode::Ordered);
    // The paper's shorthand [forward] is accepted too.
    let f2: Scheme = "inter(pid)2[forward]".parse().unwrap();
    assert_eq!(f2.update, UpdateMode::Forwarded);
}

#[test]
fn table1_distribution_rules() {
    // Case 0: no indexing, centralized only.
    assert!(IndexSpec::none().centralized_only());
    // Lai & Falsafi's scheme (pid+addr) distributes at the processors.
    let lai: Scheme = "last(pid+mem8)".parse().unwrap();
    assert!(lai.index.distributable_at_processors());
    assert!(!lai.index.distributable_at_directories());
    // A dir+addr scheme distributes at the directories and is pure
    // address-based (update mechanisms coincide).
    let addr: Scheme = "union(dir+add8)1".parse().unwrap();
    assert!(addr.index.distributable_at_directories());
    assert!(addr.index.is_pure_address());
}

#[test]
fn baseline_is_storage_free_modulo_one_register() {
    // The paper quotes the baseline at size 0 ("it costs no storage"); we
    // account its single 16-bit bitmap register honestly.
    let baseline = Scheme::baseline_last();
    assert_eq!(baseline.function, PredictionFunction::Last);
    assert_eq!(baseline.total_bits(16), 16);
    assert_eq!(baseline.size_log2_bits(16), 4);
}

#[test]
fn pas_cost_includes_history_and_pattern_tables() {
    // Per entry: 16 nodes x (depth history bits + 2^depth 2-bit counters).
    let pas: Scheme = "pas(pid+add4)2[direct]".parse().unwrap();
    // Entry: 16*2 + 16*4*2 = 160 bits; 2^8 entries.
    assert_eq!(pas.total_bits(16), 160 << 8);
}
