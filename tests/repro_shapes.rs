//! Reproduction smoke tests: the paper's qualitative findings, asserted on
//! small-scale suite runs. These are the "shapes" EXPERIMENTS.md records —
//! who wins, in which direction, not absolute numbers.

use csp::core::{IndexSpec, PredictionFunction, Scheme, UpdateMode};
use csp::harness::runner::{evaluate_scheme, sweep_families, Suite};
use csp::metrics::Screening;
use csp::workloads::Benchmark;

fn suite() -> Suite {
    Suite::generate(0.05, 1)
}

fn mean(suite: &Suite, spec: &str) -> Screening {
    evaluate_scheme(suite, &spec.parse::<Scheme>().unwrap()).mean
}

/// Table 6's shape: prevalence is low everywhere (2–16%), ocean and em3d
/// lowest, barnes highest, suite mean near 9%.
#[test]
fn prevalence_shape() {
    let suite = suite();
    let prev: Vec<(Benchmark, f64)> = suite
        .traces()
        .iter()
        .map(|b| (b.benchmark, b.trace.prevalence()))
        .collect();
    for &(b, p) in &prev {
        assert!(
            (0.01..=0.20).contains(&p),
            "{b}: prevalence {p} out of the paper's band"
        );
    }
    let mean_prev: f64 = prev.iter().map(|(_, p)| p).sum::<f64>() / prev.len() as f64;
    assert!(
        (0.06..=0.13).contains(&mean_prev),
        "suite mean prevalence {mean_prev}"
    );
}

/// Table 7's artifact: under direct update, every `last` predictor
/// collapses to the baseline regardless of indexing (the entry is updated
/// with the event's own feedback immediately before predicting).
#[test]
fn direct_last_is_indexing_independent() {
    let suite = suite();
    let base = mean(&suite, "last()1[direct]");
    for spec in [
        "last(pid+pc8)1[direct]",
        "last(pid+add8)1[direct]",
        "last(dir+add12)1[direct]",
    ] {
        let s = mean(&suite, spec);
        assert!(
            (s.pvp - base.pvp).abs() < 1e-9,
            "{spec} pvp {} != baseline {}",
            s.pvp,
            base.pvp
        );
        assert!(
            (s.sensitivity - base.sensitivity).abs() < 1e-9,
            "{spec} diverged from baseline"
        );
    }
    // ...but not under forwarded update.
    let fwd = mean(&suite, "last(pid+pc8)1[forwarded]");
    assert!(
        (fwd.pvp - base.pvp).abs() > 1e-6,
        "forwarded last should differ from the baseline"
    );
}

/// Section 5.4.1: deep intersection trades sensitivity for PVP; deep union
/// does the opposite. The two families bracket `last`.
#[test]
fn inter_union_tradeoff() {
    let suite = suite();
    let last = mean(&suite, "last(pid+pc8)1");
    let inter = mean(&suite, "inter(pid+pc8)4");
    let union = mean(&suite, "union(pid+pc8)4");
    assert!(
        inter.pvp > last.pvp,
        "deep inter PVP {} should beat last {}",
        inter.pvp,
        last.pvp
    );
    assert!(
        union.sensitivity > last.sensitivity,
        "deep union should be most sensitive"
    );
    assert!(
        inter.sensitivity < last.sensitivity,
        "deep inter sacrifices sensitivity"
    );
    assert!(union.pvp < last.pvp, "deep union sacrifices PVP");
}

/// Section 5.4.3: history depth pushes inter and union in opposite
/// directions on both axes.
#[test]
fn history_depth_directions() {
    let suite = suite();
    let ix = IndexSpec::new(true, 8, false, 0);
    let cells = sweep_families(&suite, &[ix], &[UpdateMode::Direct], 4);
    let d2_i = cells[0].mean(PredictionFunction::Inter, 2);
    let d4_i = cells[0].mean(PredictionFunction::Inter, 4);
    let d2_u = cells[0].mean(PredictionFunction::Union, 2);
    let d4_u = cells[0].mean(PredictionFunction::Union, 4);
    assert!(
        d4_i.pvp >= d2_i.pvp - 0.02,
        "deeper inter should not lose PVP"
    );
    assert!(
        d4_i.sensitivity <= d2_i.sensitivity,
        "deeper inter predicts less"
    );
    assert!(
        d4_u.sensitivity >= d2_u.sensitivity,
        "deeper union predicts more"
    );
    assert!(
        d4_u.pvp <= d2_u.pvp + 0.02,
        "deeper union should not gain PVP"
    );
}

/// Section 5.4.2: pc-only indexing is the all-around bad performer ("it is
/// not a good idea to mix the history of store instructions belonging to
/// different nodes").
#[test]
fn pc_only_indexing_is_bad() {
    let suite = suite();
    let pc_only = mean(&suite, "inter(pc12)2");
    let with_pid = mean(&suite, "inter(pid+pc8)2");
    assert!(
        with_pid.pvp > pc_only.pvp && with_pid.sensitivity > pc_only.sensitivity,
        "pid+pc ({:.3}/{:.3}) should dominate pc-only ({:.3}/{:.3})",
        with_pid.pvp,
        with_pid.sensitivity,
        pc_only.pvp,
        pc_only.sensitivity
    );
}

/// Section 5.4.1: PAs predictors find no exploitable patterns beyond what
/// plain history schemes capture — they never dominate both axes.
#[test]
fn pas_does_not_dominate_history_schemes() {
    let suite = suite();
    let pas = mean(&suite, "pas(pid+pc4)2");
    let inter = mean(&suite, "inter(pid+pc8)4");
    let union = mean(&suite, "union(pid+pc8)4");
    let dominates = |a: &Screening, b: &Screening| a.pvp > b.pvp && a.sensitivity > b.sensitivity;
    assert!(
        !dominates(&pas, &inter) || !dominates(&pas, &union),
        "PAs should not dominate both history families"
    );
}

/// Summary: "the most sensitive schemes in our study are high-depth union
/// schemes" — depth-4 union beats every inter scheme on sensitivity at
/// equal indexing.
#[test]
fn deep_union_wins_sensitivity() {
    let suite = suite();
    for ix_spec in ["dir+add8", "pid+pc8"] {
        let u = mean(&suite, &format!("union({ix_spec})4"));
        for other in ["inter({})2", "inter({})4", "last({})1"] {
            let spec = other.replace("{}", ix_spec);
            let o = mean(&suite, &spec);
            assert!(
                u.sensitivity >= o.sensitivity,
                "union({ix_spec})4 sens {} < {spec} sens {}",
                u.sensitivity,
                o.sensitivity
            );
        }
    }
}

/// Forwarded update requires last-writer state but routes history to the
/// right writer; on the whole suite it should at least match direct's
/// sensitivity for instruction-indexed last prediction (Table 7's trend).
#[test]
fn forwarded_routes_history_to_the_right_writer() {
    // The engine-level test (csp-core) proves this sharply on a synthetic
    // alternating-writer trace; here we just require the suite-level means
    // to be close (the paper: "direct update and forwarded update have
    // very little influence on PVP").
    let suite = suite();
    let direct = mean(&suite, "inter(pid+pc8)2[direct]");
    let fwd = mean(&suite, "inter(pid+pc8)2[forwarded]");
    assert!(
        (direct.pvp - fwd.pvp).abs() < 0.15,
        "direct {} vs forwarded {} PVP should be broadly similar",
        direct.pvp,
        fwd.pvp
    );
}

/// Ordered update is an upper bound in informational terms: it never sees
/// stale history. For address-indexed schemes it coincides with the others
/// (tested in invariants.rs); here we require it to be a competitive
/// oracle for instruction indexing.
#[test]
fn ordered_update_is_a_strong_oracle() {
    let suite = suite();
    let fwd = mean(&suite, "last(pid+pc8)1[forwarded]");
    let ord = mean(&suite, "last(pid+pc8)1[ordered]");
    assert!(
        ord.pvp >= fwd.pvp - 0.05,
        "ordered pvp {} should not trail forwarded {} by much",
        ord.pvp,
        fwd.pvp
    );
}

/// The engine's result for a mid-sized scheme is identical across repeated
/// suite generations (full determinism of the reproduction pipeline).
#[test]
fn whole_pipeline_is_deterministic() {
    let a = mean(&suite(), "inter(pid+pc4+add4)3[forwarded]");
    let b = mean(&suite(), "inter(pid+pc4+add4)3[forwarded]");
    assert_eq!(a, b);
}
