//! End-to-end pipeline: workload generator → memory-system simulator →
//! coherence trace → predictor engine → screening metrics.

use csp::core::{engine, Scheme};
use csp::metrics::Screening;
use csp::sim::{MemAccess, MemorySystem, SystemConfig};
use csp::trace::NodeId;
use csp::workloads::{generate_suite, Benchmark, WorkloadConfig};

#[test]
fn hand_built_program_through_full_pipeline() {
    // A tiny producer-consumer program, written as raw accesses.
    let mut sys = MemorySystem::new(SystemConfig::paper_16_node());
    for round in 0..20 {
        sys.access(MemAccess::write(NodeId(0), 0x100, 0x8000));
        sys.access(MemAccess::read(NodeId(3), 0x200, 0x8000));
        sys.access(MemAccess::read(NodeId(7), 0x204, 0x8000));
        let _ = round;
    }
    let (trace, stats) = sys.finish();
    assert_eq!(stats.coherence_store_misses(), trace.len() as u64);
    assert_eq!(trace.len(), 20);

    // After warmup, every predictor family should nail this pattern.
    for spec in [
        "last(pid+pc8)1",
        "inter(pid+pc8)2",
        "union(dir+add8)4",
        "pas(pid)2",
    ] {
        let scheme: Scheme = spec.parse().unwrap();
        let s = engine::run_scheme(&trace, &scheme).screening();
        assert!(s.pvp > 0.8, "{spec}: pvp {}", s.pvp);
        assert!(s.sensitivity > 0.7, "{spec}: sens {}", s.sensitivity);
    }
}

#[test]
fn every_benchmark_produces_scorable_traces() {
    let suite = generate_suite(0.02, 9);
    let scheme: Scheme = "inter(pid+pc8)2[direct]".parse().unwrap();
    for b in &suite {
        let m = engine::run_scheme(&b.trace, &scheme);
        assert_eq!(
            m.decisions(),
            b.trace.len() as u64 * 16,
            "{}: one decision per node per event",
            b.benchmark
        );
        let s = m.screening();
        assert!(
            (s.prevalence - b.trace.prevalence()).abs() < 1e-9,
            "{}: screening prevalence must equal trace prevalence",
            b.benchmark
        );
    }
}

#[test]
fn forwarding_estimator_consumes_engine_predictions() {
    let (trace, _) = WorkloadConfig::new(Benchmark::Unstruct)
        .scale(0.05)
        .generate_trace();
    let scheme: Scheme = "union(pid+pc8)2[direct]".parse().unwrap();
    let preds = engine::predictions_for(&trace, &scheme);
    let report = csp::sim::forwarding::estimate(&trace, &preds, &SystemConfig::paper_16_node());
    // Forwarding usefulness equals the scheme's PVP by construction, minus
    // the writer-targeted forwards the estimator drops.
    let pvp = engine::run_scheme(&trace, &scheme).screening().pvp;
    assert!(
        (report.useful_fraction() - pvp).abs() < 0.05,
        "useful fraction {} should track pvp {}",
        report.useful_fraction(),
        pvp
    );
    assert!(report.base_latency_cycles > 0);
}

#[test]
fn trace_io_roundtrip_through_file() {
    let (trace, _) = WorkloadConfig::new(Benchmark::Gauss)
        .scale(0.05)
        .generate_trace();
    let dir = std::env::temp_dir().join("csp-e2e-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("gauss.csptrc");
    {
        let file = std::fs::File::create(&path).unwrap();
        csp::trace::io::write_trace(std::io::BufWriter::new(file), &trace).unwrap();
    }
    let back = {
        let file = std::fs::File::open(&path).unwrap();
        csp::trace::io::read_trace(std::io::BufReader::new(file)).unwrap()
    };
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, back);
    // The reloaded trace scores identically.
    let scheme: Scheme = "inter(pid+add6)4".parse().unwrap();
    assert_eq!(
        engine::run_scheme(&trace, &scheme),
        engine::run_scheme(&back, &scheme)
    );
}

#[test]
fn mean_screening_matches_per_benchmark_average() {
    let suite = generate_suite(0.02, 3);
    let scheme: Scheme = "last(pid+pc8)1".parse().unwrap();
    let per: Vec<Screening> = suite
        .iter()
        .map(|b| engine::run_scheme(&b.trace, &scheme).screening())
        .collect();
    let mean = Screening::mean(&per).unwrap();
    let harness_suite = csp::harness::Suite::generate(0.02, 3);
    let via_harness = csp::harness::runner::evaluate_scheme(&harness_suite, &scheme);
    // Same seeds and scale: the harness must agree with the manual loop.
    assert!((via_harness.mean.pvp - mean.pvp).abs() < 1e-12);
    assert!((via_harness.mean.sensitivity - mean.sensitivity).abs() < 1e-12);
}
