//! End-to-end fault injection: corrupt bytes, corrupt directories, torn
//! cache entries.
//!
//! Three layers of the robustness story are exercised here, on top of the
//! unit suites in the member crates:
//!
//! * **Byte level** — [`csp::trace::fault`] mutates serialized traces and
//!   [`csp::trace::io::read_trace`] must never panic; for the checksummed
//!   v2 format, *every* single-byte flip must be rejected.
//! * **Protocol level** — [`csp::sim::directory::DirFault`] corrupts the
//!   live directory mid-run; structural damage is flagged by the typed
//!   invariant checker and semantic damage by divergence from the flat
//!   golden model ([`csp::sim::check`]).
//! * **Pipeline level** — a corrupted cache entry is quarantined and
//!   regenerated bit-identically, and a checkpointed sweep replayed from
//!   its log reproduces the fresh run bitwise.
//!
//! (Worker panic isolation and partial-resume are covered by the unit
//! tests in `csp-harness`'s `runner` module, where a panicking job can be
//! injected directly.)

use csp::harness::runner::{evaluate_schemes, evaluate_schemes_checkpointed, Suite};
use csp::harness::{CacheOutcome, TraceCache};
use csp::sim::check::{compare_traces, reference_trace, TraceDivergence};
use csp::sim::directory::DirFault;
use csp::sim::{CacheConfig, MemAccess, MemorySystem, SystemConfig};
use csp::trace::fault::{all_single_byte_flips, Mutation, MutationStream};
use csp::trace::{io as trace_io, LineAddr, NodeId};
use csp::workloads::{Benchmark, WorkloadConfig};

/// A small but real benchmark trace, serialized with the given writer.
fn sample_bytes(v1: bool) -> Vec<u8> {
    let (trace, _) = WorkloadConfig::new(Benchmark::Water)
        .scale(0.02)
        .seed(11)
        .generate_trace();
    let mut buf = Vec::new();
    if v1 {
        trace_io::write_trace_v1(&mut buf, &trace).expect("serialize v1");
    } else {
        trace_io::write_trace(&mut buf, &trace).expect("serialize v2");
    }
    buf
}

/// ≥1000 mutated buffers across both format versions: the reader must
/// never panic, and any v2 flip that actually changed the bytes must be
/// rejected rather than silently decoded.
#[test]
fn mutated_trace_buffers_never_panic() {
    let v2 = sample_bytes(false);
    let v1 = sample_bytes(true);
    let mut total = 0usize;
    for (buf, checked) in [(&v2, true), (&v1, false)] {
        for mutation in MutationStream::new(buf.len(), 0xFA17).take(600) {
            let mutated = mutation.apply(buf);
            total += 1;
            // The call itself is the assertion: any panic fails the test.
            let result = trace_io::read_trace(mutated.as_slice());
            if checked && mutated != *buf {
                if let Mutation::Flip { offset, .. } = mutation {
                    assert!(
                        result.is_err(),
                        "v2 flip at byte {offset} was accepted: {mutation:?}"
                    );
                }
            }
        }
    }
    assert!(total >= 1000, "only {total} mutated buffers exercised");
}

/// Exhaustive corruption coverage: no single-byte flip of a v2 file,
/// anywhere in the file and under several masks, decodes successfully.
///
/// Exhaustive-times-whole-file decoding is quadratic, so this uses a
/// small (but real, with prev-writer links and final reader sets) trace
/// from the golden model rather than a full benchmark.
#[test]
fn every_single_byte_flip_of_a_v2_file_is_detected() {
    let stream = (0..120u64).map(|i| {
        let node = NodeId((i % 9) as u8);
        let addr = (i % 13) * 64;
        if i % 3 == 0 {
            MemAccess::write(node, (i % 5) as u32, addr)
        } else {
            MemAccess::read(node, (i % 5) as u32, addr)
        }
    });
    let trace = reference_trace(16, stream);
    assert!(trace.len() > 20, "the sample must contain real events");
    let mut buf = Vec::new();
    trace_io::write_trace(&mut buf, &trace).expect("serialize v2");
    for xor in [0x01u8, 0x80, 0xFF] {
        for mutation in all_single_byte_flips(&buf, xor) {
            let mutated = mutation.apply(&buf);
            assert!(
                trace_io::read_trace(mutated.as_slice()).is_err(),
                "undetected corruption: {mutation:?}"
            );
        }
    }
}

/// v1 files written by older builds stay readable through the v2 reader.
#[test]
fn legacy_v1_files_round_trip_through_the_v2_reader() {
    let (trace, _) = WorkloadConfig::new(Benchmark::Em3d)
        .scale(0.02)
        .seed(4)
        .generate_trace();
    let mut buf = Vec::new();
    trace_io::write_trace_v1(&mut buf, &trace).expect("serialize v1");
    assert_eq!(trace_io::probe_version(buf.as_slice()).unwrap(), 1);
    let back = trace_io::read_trace(buf.as_slice()).expect("v1 must stay readable");
    assert_eq!(trace, back);
}

/// Huge caches so evictions cannot occur and the golden model applies.
fn eviction_free_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_16_node();
    cfg.l1 = CacheConfig::new(1 << 22, 4, 64);
    cfg.l2 = CacheConfig::new(1 << 24, 8, 64);
    cfg
}

/// Structurally invalid directory damage is caught by the typed invariant
/// checker without any reference model.
#[test]
fn structural_directory_faults_are_flagged() {
    let line = LineAddr(5);
    let addr = line.0 * 64;
    let mut sys = MemorySystem::new(eviction_free_config());
    sys.access(MemAccess::write(NodeId(0), 1, addr));
    sys.access(MemAccess::read(NodeId(1), 2, addr));
    sys.access(MemAccess::read(NodeId(2), 3, addr));
    assert!(sys.directory().check_invariants().is_ok());

    assert!(
        sys.directory_mut()
            .inject_fault(DirFault::ClearSharers { line }),
        "the shared line must accept the fault"
    );
    let violation = sys
        .directory()
        .check_invariants()
        .expect_err("an empty sharer set must be flagged");
    assert!(
        violation.to_string().contains("no holders"),
        "unexpected violation: {violation}"
    );
}

/// Structurally *valid* but semantically incoherent damage (a forgotten
/// sharer) escapes the invariant checker by design and is caught instead
/// by divergence from the flat golden model.
#[test]
fn semantic_directory_faults_diverge_from_the_golden_model() {
    let line = LineAddr(5);
    let addr = line.0 * 64;
    let prefix = [
        MemAccess::write(NodeId(0), 1, addr),
        MemAccess::read(NodeId(1), 2, addr),
        MemAccess::read(NodeId(2), 3, addr),
    ];
    // The write that follows must invalidate (and report) nodes 1 and 2.
    let probe = MemAccess::write(NodeId(3), 4, addr);

    let mut sys = MemorySystem::new(eviction_free_config());
    for &a in &prefix {
        sys.access(a);
    }
    assert!(
        sys.directory_mut().inject_fault(DirFault::DropSharer {
            line,
            node: NodeId(1),
        }),
        "node 1 must be a sharer after its read"
    );
    // The fault is invisible to the structural checker...
    assert!(sys.directory().check_invariants().is_ok());

    sys.access(probe);
    let (actual, _) = sys.finish();
    let reference = reference_trace(16, prefix.iter().copied().chain([probe]));
    // ...but the golden model sees the lost invalidation.
    match compare_traces(&actual, &reference) {
        Err(TraceDivergence::EventMismatch { index, .. }) => {
            assert_eq!(index, 1, "the probe write is the diverging event");
        }
        other => panic!("expected an event mismatch, got {other:?}"),
    }
}

/// A corrupted cache entry is quarantined (kept for forensics under
/// `.corrupt`) and regenerated with bit-identical contents.
#[test]
fn corrupt_cache_entries_are_quarantined_and_regenerated() {
    let dir =
        std::env::temp_dir().join(format!("csp-fault-injection-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = TraceCache::new(&dir);
    let (original, outcome) = cache
        .load_or_generate(Benchmark::Barnes, 0.02, 7)
        .expect("first generation");
    assert_eq!(outcome, CacheOutcome::Miss);

    // Flip one payload byte, mid-file.
    let path = cache.trace_path(Benchmark::Barnes, 0.02, 7);
    let mut bytes = std::fs::read(&path).expect("read cache entry");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).expect("write corrupted entry");

    let (regenerated, outcome) = cache
        .load_or_generate(Benchmark::Barnes, 0.02, 7)
        .expect("regeneration");
    assert_eq!(outcome, CacheOutcome::Quarantined);
    assert_eq!(
        original.trace, regenerated.trace,
        "regeneration must be bit-identical"
    );
    assert!(
        path.with_extension("csptrc.corrupt").exists()
            || dir
                .read_dir()
                .expect("list cache dir")
                .filter_map(Result::ok)
                .any(|e| e.path().to_string_lossy().ends_with(".corrupt")),
        "the corrupt file must be preserved for forensics"
    );

    // And a third load is a clean hit again.
    let (_, outcome) = cache
        .load_or_generate(Benchmark::Barnes, 0.02, 7)
        .expect("reload");
    assert_eq!(outcome, CacheOutcome::Hit);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A sweep replayed from its checkpoint log reproduces the fresh run
/// bitwise, end to end through the public API.
#[test]
fn checkpointed_sweep_replays_bitwise_identically() {
    let suite = Suite::generate(0.01, 3);
    let schemes: Vec<csp::core::Scheme> = [
        "union(pid+pc8)2[direct]",
        "inter(add10)2[forwarded]",
        "union(add8+pc4)1[direct]",
    ]
    .iter()
    .map(|s| s.parse().expect("valid scheme"))
    .collect();
    let path = std::env::temp_dir().join(format!(
        "csp-fault-injection-ckpt-{}.bin",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let fresh = evaluate_schemes(&suite, &schemes);
    let first = evaluate_schemes_checkpointed(&suite, &schemes, &path)
        .expect("checkpointed run")
        .into_complete()
        .expect("no failures");
    // The second run resolves every cell from the checkpoint log alone.
    let replayed = evaluate_schemes_checkpointed(&suite, &schemes, &path)
        .expect("replayed run")
        .into_complete()
        .expect("no failures");

    for ((f, a), b) in fresh.iter().zip(&first).zip(&replayed) {
        assert_eq!(f.scheme, a.scheme);
        assert_eq!(f.scheme, b.scheme);
        assert_eq!(f.per_benchmark, a.per_benchmark);
        assert_eq!(f.per_benchmark, b.per_benchmark);
        assert_eq!(f.mean.pvp.to_bits(), b.mean.pvp.to_bits());
        assert_eq!(f.mean.sensitivity.to_bits(), b.mean.sensitivity.to_bits());
        assert_eq!(f.mean.prevalence.to_bits(), b.mean.prevalence.to_bits());
    }
    let _ = std::fs::remove_file(&path);
}
