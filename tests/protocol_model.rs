//! Golden-model checking of the coherence protocol.
//!
//! An independent *flat* reference model — no caches, no LRU, no
//! hierarchy; just "who wrote last, who read since" bookkeeping per line —
//! predicts exactly which accesses are coherence store misses and what
//! feedback each carries, as long as capacity evictions cannot occur.
//! Running both models over random access streams and demanding identical
//! traces checks the full cache/directory/protocol stack against a
//! twenty-line specification.

use csp::sim::{MemAccess, MemorySystem, Protocol, SystemConfig};
use csp::trace::{LineAddr, NodeId, Pc, SharingBitmap, SharingEvent, Trace};
use proptest::prelude::*;
use std::collections::HashMap;

/// The flat reference model (MSI semantics).
struct FlatModel {
    /// Per line: (current writer if any, readers since last write,
    /// holders of valid copies, last writer identity, home).
    lines: HashMap<u64, FlatLine>,
    trace: Trace,
}

#[derive(Clone)]
struct FlatLine {
    owner: Option<NodeId>,
    readers: SharingBitmap,
    holders: SharingBitmap,
    last_writer: Option<(NodeId, Pc)>,
    home: NodeId,
}

impl FlatModel {
    fn new(nodes: usize) -> Self {
        FlatModel {
            lines: HashMap::new(),
            trace: Trace::new(nodes),
        }
    }

    fn line(&mut self, line: u64, toucher: NodeId) -> &mut FlatLine {
        self.lines.entry(line).or_insert_with(|| FlatLine {
            owner: None,
            readers: SharingBitmap::empty(),
            holders: SharingBitmap::empty(),
            last_writer: None,
            home: toucher,
        })
    }

    fn access(&mut self, a: MemAccess) {
        let line = a.addr / 64;
        let entry = self.line(line, a.node);
        if a.is_write {
            // Silent iff the writer already owns the line exclusively.
            let silent =
                entry.owner == Some(a.node) && entry.holders == SharingBitmap::singleton(a.node);
            if !silent {
                let feedback = entry.readers.without(a.node);
                let event = SharingEvent::new(
                    a.node,
                    a.pc,
                    LineAddr(line),
                    entry.home,
                    feedback,
                    entry.last_writer,
                );
                entry.owner = Some(a.node);
                entry.holders = SharingBitmap::singleton(a.node);
                entry.readers = SharingBitmap::empty();
                entry.last_writer = Some((a.node, a.pc));
                self.trace.push(event);
            }
        } else {
            // A read by a non-holder joins the sharers and sets its
            // access bit; the owner keeps a (now shared) copy.
            if !entry.holders.contains(a.node) {
                entry.holders.insert(a.node);
                entry.readers.insert(a.node);
            }
        }
    }

    fn finish(mut self) -> Trace {
        let lines: Vec<(u64, SharingBitmap)> =
            self.lines.iter().map(|(l, e)| (*l, e.readers)).collect();
        for (line, readers) in lines {
            if !readers.is_empty() {
                self.trace.set_final_readers(LineAddr(line), readers);
            }
        }
        self.trace
    }
}

/// Huge caches so the real simulator can never evict: the only divergence
/// channel between the two models is a protocol bug.
fn eviction_free_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_16_node();
    cfg.l1 = csp::sim::CacheConfig::new(1 << 22, 4, 64);
    cfg.l2 = csp::sim::CacheConfig::new(1 << 24, 8, 64);
    cfg
}

fn arbitrary_stream() -> impl Strategy<Value = Vec<MemAccess>> {
    proptest::collection::vec(
        (0u8..16, 0u32..12, 0u64..24, any::<bool>()).prop_map(|(node, pc, line, is_write)| {
            let addr = line * 64 + u64::from(pc % 8) * 8;
            if is_write {
                MemAccess::write(NodeId(node), pc, addr)
            } else {
                MemAccess::read(NodeId(node), pc, addr)
            }
        }),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full simulator and the flat reference produce identical traces
    /// on arbitrary access streams (MSI, no evictions).
    #[test]
    fn prop_simulator_matches_flat_model(stream in arbitrary_stream()) {
        let mut sys = MemorySystem::new(eviction_free_config());
        let mut model = FlatModel::new(16);
        for &a in &stream {
            sys.access(a);
            model.access(a);
        }
        let (real, stats) = sys.finish();
        let reference = model.finish();
        prop_assert_eq!(stats.l2_evictions, 0, "config must make evictions impossible");
        prop_assert_eq!(real.events(), reference.events());
        // Ground truth must agree too (final readers may differ in
        // representation but resolve identically).
        prop_assert_eq!(real.resolve_actuals(), reference.resolve_actuals());
    }

    /// MESI only removes events relative to MSI, never changes feedback of
    /// the events it keeps: every MESI event appears in the MSI trace with
    /// identical ground truth totals.
    #[test]
    fn prop_mesi_is_a_subset_of_msi(stream in arbitrary_stream()) {
        let mut msi = MemorySystem::new(eviction_free_config());
        let mut cfg = eviction_free_config();
        cfg.protocol = Protocol::Mesi;
        let mut mesi = MemorySystem::new(cfg);
        for &a in &stream {
            msi.access(a);
            mesi.access(a);
        }
        let (msi_trace, _) = msi.finish();
        let (mesi_trace, mesi_stats) = mesi.finish();
        prop_assert!(mesi_trace.len() <= msi_trace.len());
        prop_assert_eq!(
            msi_trace.len() - mesi_trace.len(),
            mesi_stats.silent_upgrades as usize,
            "every missing event must be accounted for by a silent E->M upgrade"
        );
        // With no silent upgrades the two protocols are indistinguishable.
        if mesi_stats.silent_upgrades == 0 {
            prop_assert_eq!(msi_trace, mesi_trace);
        }
    }
}

#[test]
fn flat_model_sanity() {
    // Deterministic miniature: the reference model's own behaviour.
    let mut m = FlatModel::new(16);
    m.access(MemAccess::write(NodeId(0), 1, 0));
    m.access(MemAccess::read(NodeId(1), 2, 0));
    m.access(MemAccess::write(NodeId(0), 1, 0)); // upgrade: invalidates 1
    let trace = m.finish();
    assert_eq!(trace.len(), 2);
    assert_eq!(
        trace.events()[1].invalidated,
        SharingBitmap::from_nodes(&[NodeId(1)])
    );
}
