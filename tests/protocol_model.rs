//! Golden-model checking of the coherence protocol.
//!
//! The flat reference model lives in `csp::sim::check` (promoted from this
//! file so fault-injection suites can share it); these property tests run
//! it against the full cache/directory/protocol stack over random access
//! streams and demand identical traces whenever evictions cannot occur.

use csp::sim::check::{compare_traces, FlatModel};
use csp::sim::{MemAccess, MemorySystem, Protocol, SystemConfig};
use csp::trace::NodeId;
use proptest::prelude::*;

/// Huge caches so the real simulator can never evict: the only divergence
/// channel between the two models is a protocol bug.
fn eviction_free_config() -> SystemConfig {
    let mut cfg = SystemConfig::paper_16_node();
    cfg.l1 = csp::sim::CacheConfig::new(1 << 22, 4, 64);
    cfg.l2 = csp::sim::CacheConfig::new(1 << 24, 8, 64);
    cfg
}

fn arbitrary_stream() -> impl Strategy<Value = Vec<MemAccess>> {
    proptest::collection::vec(
        (0u8..16, 0u32..12, 0u64..24, any::<bool>()).prop_map(|(node, pc, line, is_write)| {
            let addr = line * 64 + u64::from(pc % 8) * 8;
            if is_write {
                MemAccess::write(NodeId(node), pc, addr)
            } else {
                MemAccess::read(NodeId(node), pc, addr)
            }
        }),
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The full simulator and the flat reference produce identical traces
    /// on arbitrary access streams (MSI, no evictions).
    #[test]
    fn prop_simulator_matches_flat_model(stream in arbitrary_stream()) {
        let mut sys = MemorySystem::new(eviction_free_config());
        let mut model = FlatModel::new(16);
        for &a in &stream {
            sys.access(a);
            model.access(a);
        }
        let (real, stats) = sys.finish();
        let reference = model.finish();
        prop_assert_eq!(stats.l2_evictions, 0, "config must make evictions impossible");
        if let Err(divergence) = compare_traces(&real, &reference) {
            return Err(TestCaseError::fail(format!("{divergence}")));
        }
    }

    /// The directory's structural invariants hold at end of run, via the
    /// typed checker.
    #[test]
    fn prop_invariants_hold_after_any_stream(stream in arbitrary_stream()) {
        let mut sys = MemorySystem::new(eviction_free_config());
        for &a in &stream {
            sys.access(a);
        }
        if let Err(violation) = sys.directory().check_invariants() {
            return Err(TestCaseError::fail(format!("{violation}")));
        }
    }

    /// MESI only removes events relative to MSI, never changes feedback of
    /// the events it keeps: every MESI event appears in the MSI trace with
    /// identical ground truth totals.
    #[test]
    fn prop_mesi_is_a_subset_of_msi(stream in arbitrary_stream()) {
        let mut msi = MemorySystem::new(eviction_free_config());
        let mut cfg = eviction_free_config();
        cfg.protocol = Protocol::Mesi;
        let mut mesi = MemorySystem::new(cfg);
        for &a in &stream {
            msi.access(a);
            mesi.access(a);
        }
        let (msi_trace, _) = msi.finish();
        let (mesi_trace, mesi_stats) = mesi.finish();
        prop_assert!(mesi_trace.len() <= msi_trace.len());
        prop_assert_eq!(
            msi_trace.len() - mesi_trace.len(),
            mesi_stats.silent_upgrades as usize,
            "every missing event must be accounted for by a silent E->M upgrade"
        );
        // With no silent upgrades the two protocols are indistinguishable.
        if mesi_stats.silent_upgrades == 0 {
            prop_assert_eq!(msi_trace, mesi_trace);
        }
    }
}
