//! The taxonomy's structural claims (paper Section 3.1, Table 1),
//! verified over the complete 16-case indexing space.

use csp::core::distribution::{run_distributed, Location};
use csp::core::{engine, IndexSpec, PredictionFunction, Scheme, UpdateMode};
use csp::workloads::{Benchmark, WorkloadConfig};

/// One representative index per Table 1 case (pc/addr at 4 bits when
/// present).
fn table1_representatives() -> Vec<IndexSpec> {
    let mut out = Vec::new();
    for case in 0u8..16 {
        out.push(IndexSpec::new(
            case & 0b1000 != 0,
            if case & 0b0100 != 0 { 4 } else { 0 },
            case & 0b0010 != 0,
            if case & 0b0001 != 0 { 4 } else { 0 },
        ));
    }
    out
}

#[test]
fn all_sixteen_cases_are_distinct_and_classified() {
    let reps = table1_representatives();
    for (case, ix) in reps.iter().enumerate() {
        assert_eq!(ix.table1_case() as usize, case);
        // Table 1's distribution columns.
        assert_eq!(ix.distributable_at_processors(), case & 0b1000 != 0);
        assert_eq!(ix.distributable_at_directories(), case & 0b0010 != 0);
        // Cases 0, 1, 4, 5 are centralized-only (neither pid nor dir).
        assert_eq!(ix.centralized_only(), matches!(case, 0 | 1 | 4 | 5));
    }
}

#[test]
fn every_distributable_case_distributes_exactly() {
    let trace = WorkloadConfig::new(Benchmark::Water)
        .scale(0.03)
        .generate_trace()
        .0;
    for ix in table1_representatives() {
        let scheme = Scheme::new(PredictionFunction::Union, ix, 2, UpdateMode::Direct);
        let global = engine::run_scheme(&trace, &scheme);
        if ix.distributable_at_processors() {
            assert_eq!(
                global,
                run_distributed(&trace, &scheme, Location::Processors),
                "case {} at processors",
                ix.table1_case()
            );
        }
        if ix.distributable_at_directories() {
            assert_eq!(
                global,
                run_distributed(&trace, &scheme, Location::Directories),
                "case {} at directories",
                ix.table1_case()
            );
        }
    }
}

#[test]
fn index_bits_decompose_additively() {
    // Section 3.1: pid/dir contribute log2(N) bits each; pc/addr their
    // chosen widths. Every case's total must be the sum of its parts.
    for ix in table1_representatives() {
        let expected = u32::from(ix.pid) * 4
            + u32::from(ix.pc_bits)
            + u32::from(ix.dir) * 4
            + u32::from(ix.addr_bits);
        assert_eq!(ix.bits(16), expected, "{ix}");
    }
}

#[test]
fn case_zero_is_the_single_entry_predictor() {
    let trace = WorkloadConfig::new(Benchmark::Unstruct)
        .scale(0.03)
        .generate_trace()
        .0;
    // Depth-1 `last` under direct update is indexing-independent (the
    // Table 7 artifact), so the single-entry case is indistinguishable
    // from per-line last there:
    let baseline = engine::run_scheme(&trace, &Scheme::baseline_last());
    let per_line_last = engine::run_scheme(&trace, &"last(add16)1".parse::<Scheme>().unwrap());
    assert_eq!(baseline, per_line_last);
    // ...but with any deeper history the single shared entry mixes every
    // line's feedback and indexing matters again.
    let global2 = engine::run_scheme(&trace, &"union()2".parse::<Scheme>().unwrap());
    let per_line2 = engine::run_scheme(&trace, &"union(add16)2".parse::<Scheme>().unwrap());
    assert_ne!(global2, per_line2);
    assert_eq!(global2.decisions(), per_line2.decisions());
}

#[test]
fn truncating_a_field_to_zero_bits_equals_dropping_it() {
    let trace = WorkloadConfig::new(Benchmark::Barnes)
        .scale(0.03)
        .generate_trace()
        .0;
    let with_zero = Scheme::new(
        PredictionFunction::Inter,
        IndexSpec::new(true, 0, false, 0),
        2,
        UpdateMode::Direct,
    );
    let parsed: Scheme = "inter(pid)2[direct]".parse().unwrap();
    assert_eq!(with_zero, parsed);
    assert_eq!(
        engine::run_scheme(&trace, &with_zero),
        engine::run_scheme(&trace, &parsed)
    );
}

#[test]
fn wider_fields_never_change_decision_counts() {
    let trace = WorkloadConfig::new(Benchmark::Em3d)
        .scale(0.03)
        .generate_trace()
        .0;
    let mut last_decisions = None;
    for bits in [0u8, 2, 8, 16] {
        let ix = IndexSpec::new(false, 0, false, bits);
        let scheme = Scheme::new(PredictionFunction::Union, ix, 2, UpdateMode::Direct);
        let d = engine::run_scheme(&trace, &scheme).decisions();
        if let Some(prev) = last_decisions {
            assert_eq!(d, prev, "decision count is index-independent");
        }
        last_decisions = Some(d);
    }
}
