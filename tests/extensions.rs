//! Integration tests of the beyond-the-paper extension modules on real
//! suite traces: sticky-spatial, confidence gating, Cosmos, and the
//! distribution equivalence on simulator-generated (not hand-built) data.

use csp::core::confidence::{confidence_curve, run_with_confidence};
use csp::core::cosmos::Cosmos;
use csp::core::distribution::{run_distributed, Location};
use csp::core::sticky::StickySpatial;
use csp::core::{engine, Scheme};
use csp::workloads::{Benchmark, WorkloadConfig};
use csp_trace::Trace;

fn trace_of(b: Benchmark) -> Trace {
    WorkloadConfig::new(b).scale(0.05).generate_trace().0
}

#[test]
fn sticky_radius_trades_pvp_for_sensitivity() {
    // Widening the spatial radius predicts strictly more, so sensitivity
    // must not fall and PVP must not rise.
    let trace = trace_of(Benchmark::Unstruct);
    let mut last_sens = -1.0;
    let mut last_pvp = 2.0;
    for radius in [0u64, 1, 2, 4] {
        let s = StickySpatial::new(16, radius).run(&trace).screening();
        assert!(
            s.sensitivity >= last_sens - 1e-12,
            "radius {radius}: sensitivity fell from {last_sens} to {}",
            s.sensitivity
        );
        assert!(
            s.pvp <= last_pvp + 1e-12,
            "radius {radius}: PVP rose from {last_pvp} to {}",
            s.pvp
        );
        last_sens = s.sensitivity;
        last_pvp = s.pvp;
    }
}

#[test]
fn sticky_beats_last_on_churning_readers() {
    // barnes churns reader sets; the sticky tolerance should capture more
    // sharing than plain last at the same addressing.
    let trace = trace_of(Benchmark::Barnes);
    let sticky = StickySpatial::new(16, 0).run(&trace).screening();
    let last = engine::run_scheme(&trace, &"last(add16)1".parse::<Scheme>().unwrap()).screening();
    assert!(
        sticky.sensitivity > last.sensitivity,
        "sticky {} should out-capture last {}",
        sticky.sensitivity,
        last.sensitivity
    );
}

#[test]
fn confidence_monotonically_trades_sensitivity() {
    // Sensitivity can only fall as the gate tightens (gating strictly
    // removes predictions); the PVP payoff is workload-dependent, so it is
    // asserted only on the strongly migratory mp3d.
    for b in [Benchmark::Mp3d, Benchmark::Water] {
        let trace = trace_of(b);
        let scheme: Scheme = "union(pid+pc8)2".parse().unwrap();
        let curve = confidence_curve(&trace, &scheme);
        let sens: Vec<f64> = curve.iter().map(|m| m.screening().sensitivity).collect();
        for w in sens.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{b}: sensitivity must fall: {sens:?}");
        }
        if b == Benchmark::Mp3d {
            let pvp0 = curve[0].screening().pvp;
            let pvp2 = curve[2].screening().pvp;
            assert!(
                pvp2 > pvp0,
                "{b}: gating should raise PVP ({pvp0} -> {pvp2})"
            );
        }
    }
}

#[test]
fn confidence_threshold_zero_is_identity_on_suite_traces() {
    let trace = trace_of(Benchmark::Gauss);
    let scheme: Scheme = "inter(pid+pc4+add4)2[forwarded]".parse().unwrap();
    assert_eq!(
        run_with_confidence(&trace, &scheme, 0),
        engine::run_scheme(&trace, &scheme)
    );
}

#[test]
fn cosmos_finds_structure_where_it_exists() {
    // Static producer-consumer (em3d) has an almost fixed writer per line:
    // next-writer prediction should be near-perfect. Migratory mp3d should
    // be much harder but still beat the 1/16 chance level thanks to
    // affinity sets.
    let em3d = Cosmos::new(16, 1).run(&trace_of(Benchmark::Em3d));
    let mp3d = Cosmos::new(16, 1).run(&trace_of(Benchmark::Mp3d));
    assert!(em3d.accuracy() > 0.85, "em3d accuracy {}", em3d.accuracy());
    assert!(mp3d.accuracy() < em3d.accuracy());
    assert!(mp3d.accuracy() > 0.10, "mp3d accuracy {}", mp3d.accuracy());
}

#[test]
fn distribution_equivalence_on_simulator_traces() {
    // Section 3.1's claim, checked on protocol-generated traces rather
    // than hand-built ones.
    let trace = trace_of(Benchmark::Water);
    for spec in ["inter(pid+pc6)2[forwarded]", "union(pid+add4)4[direct]"] {
        let scheme: Scheme = spec.parse().unwrap();
        assert_eq!(
            engine::run_scheme(&trace, &scheme),
            run_distributed(&trace, &scheme, Location::Processors),
            "{spec}"
        );
    }
    for spec in ["last(dir+add8)1[direct]", "inter(dir+add6)4[ordered]"] {
        let scheme: Scheme = spec.parse().unwrap();
        assert_eq!(
            engine::run_scheme(&trace, &scheme),
            run_distributed(&trace, &scheme, Location::Directories),
            "{spec}"
        );
    }
}

#[test]
fn paired_comparison_is_antisymmetric() {
    let trace = trace_of(Benchmark::Barnes);
    let a: Scheme = "inter(pid+pc8)4".parse().unwrap();
    let b: Scheme = "union(pid+pc8)4".parse().unwrap();
    let ab = engine::compare_schemes(&trace, &a, &b);
    let ba = engine::compare_schemes(&trace, &b, &a);
    assert_eq!(ab.only_a, ba.only_b);
    assert_eq!(ab.only_b, ba.only_a);
    assert_eq!(ab.both_correct, ba.both_correct);
    assert_eq!(ab.mcnemar_chi2(), ba.mcnemar_chi2());
}
