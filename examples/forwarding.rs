//! The bandwidth-latency trade-off, quantified: drive the data-forwarding
//! estimator with predictions of increasing aggressiveness and watch
//! latency savings buy network traffic.
//!
//! ```text
//! cargo run --release --example forwarding
//! ```

use csp::core::{engine, Scheme};
use csp::sim::{forwarding, SystemConfig};
use csp::workloads::{Benchmark, WorkloadConfig};

fn main() {
    let (trace, _) = WorkloadConfig::new(Benchmark::Em3d)
        .scale(0.2)
        .generate_trace();
    let config = SystemConfig::paper_16_node();
    println!(
        "em3d: {} events, prevalence {:.2}%\n",
        trace.len(),
        trace.prevalence() * 100.0
    );
    println!(
        "{:30} {:>9} {:>9} {:>8} {:>13}",
        "scheme", "useful", "wasted", "latency", "net traffic"
    );

    let ladder = [
        "inter(pid+add8)4[direct]", // conservative: sure bets only
        "inter(pid+add8)2[direct]", // moderate
        "last(pid+add8)1[direct]",  // follow the last bitmap
        "union(pid+add8)4[direct]", // aggressive: chase everything
    ];
    for spec in ladder {
        let scheme: Scheme = spec.parse().expect("valid scheme");
        let preds = engine::predictions_for(&trace, &scheme);
        let report = forwarding::estimate(&trace, &preds, &config);
        println!(
            "{:30} {:>9} {:>9} {:>7.1}% {:>10} hops",
            spec,
            report.useful_forwards,
            report.wasted_forwards,
            report.latency_saved_fraction() * 100.0,
            report.net_traffic_hops(),
        );
    }

    // The oracle: forward exactly to the true readers.
    let oracle = trace.resolve_actuals();
    let report = forwarding::estimate(&trace, &oracle, &config);
    println!(
        "{:30} {:>9} {:>9} {:>7.1}% {:>10} hops",
        "(oracle)",
        report.useful_forwards,
        report.wasted_forwards,
        report.latency_saved_fraction() * 100.0,
        report.net_traffic_hops(),
    );
    println!(
        "\nDeeper unions save more miss latency but inject more wasted torus\n\
         traffic; deep intersections save less but can even reduce net traffic\n\
         (every satisfied reader skips its round-trip to the home node)."
    );
}
