//! Why migratory sharing is the hard case: compare predictor families on
//! mp3d (migratory) vs em3d (static producer-consumer).
//!
//! The paper deliberately keeps migratory sharing in its study ("we do not
//! assume any other filter in the system which could distinguish sharing
//! patterns"); this example shows what that costs.
//!
//! ```text
//! cargo run --release --example migratory
//! ```

use csp::core::{engine, Scheme};
use csp::workloads::{Benchmark, WorkloadConfig};
use csp_trace::Trace;

fn show(label: &str, trace: &Trace) {
    println!(
        "{label}: {} events, prevalence {:.2}%",
        trace.len(),
        trace.prevalence() * 100.0
    );
    println!("  {:30} {:>6} {:>6}", "scheme", "pvp", "sens");
    for spec in [
        "last(pid+pc8)1[direct]",
        "inter(pid+pc8)4[direct]",
        "union(pid+pc8)4[direct]",
        "pas(pid+pc4)2[direct]",
        "inter(dir+add12)4[direct]",
    ] {
        let scheme: Scheme = spec.parse().expect("valid scheme");
        let s = engine::run_scheme(trace, &scheme).screening();
        println!("  {:30} {:>6.3} {:>6.3}", spec, s.pvp, s.sensitivity);
    }
    println!();
}

fn main() {
    let (migratory, _) = WorkloadConfig::new(Benchmark::Mp3d)
        .scale(0.15)
        .generate_trace();
    let (static_pc, _) = WorkloadConfig::new(Benchmark::Em3d)
        .scale(0.15)
        .generate_trace();

    show("mp3d (migratory)", &migratory);
    show("em3d (static producer-consumer)", &static_pc);

    println!(
        "On static sharing every family nails the stable reader sets. On\n\
         migratory sharing the next consumer is close to random: intersection\n\
         retreats to near-zero sensitivity (it refuses to guess), union sprays\n\
         traffic for modest precision, and the pattern-based PAs finds no\n\
         pattern to exploit — the same ordering the paper reports."
    );
}
