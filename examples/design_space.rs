//! Sweep a reduced predictor design space and print the frontier: the
//! schemes that are not dominated on (sensitivity, PVP, cost).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use csp::harness::runner::{sweep_families, Suite};
use csp::harness::space::DesignSpace;
use csp::harness::SchemeStats;

fn main() {
    let suite = Suite::generate(0.1, 7);
    let space = DesignSpace::small();
    let cells = sweep_families(&suite, &space.index_specs(), &space.updates, 4);

    let mut all: Vec<SchemeStats> = Vec::new();
    for cell in &cells {
        for &f in &space.functions {
            for &d in &space.depths {
                let stats = cell.stats(f, d);
                if stats.size_log2() <= space.max_size_log2 {
                    all.push(stats);
                }
            }
        }
    }
    println!("evaluated {} schemes over 7 benchmarks\n", all.len());

    // Pareto frontier on (sensitivity, pvp), cost as tie-breaker.
    let mut frontier: Vec<&SchemeStats> = Vec::new();
    for s in &all {
        let dominated = all.iter().any(|o| {
            (o.mean.sensitivity > s.mean.sensitivity && o.mean.pvp >= s.mean.pvp)
                || (o.mean.sensitivity >= s.mean.sensitivity && o.mean.pvp > s.mean.pvp)
        });
        if !dominated {
            frontier.push(s);
        }
    }
    frontier.sort_by(|a, b| b.mean.pvp.partial_cmp(&a.mean.pvp).expect("finite"));

    println!(
        "{:34} {:>4} {:>6} {:>6}",
        "Pareto-optimal scheme", "size", "pvp", "sens"
    );
    for s in frontier {
        println!(
            "{:34} {:>4} {:>6.3} {:>6.3}",
            s.scheme.to_string(),
            s.size_log2(),
            s.mean.pvp,
            s.mean.sensitivity
        );
    }
    println!(
        "\nPick from the top for bandwidth-constrained machines (sure bets only),\n\
         from the bottom when spare bandwidth lets you chase every opportunity."
    );
}
