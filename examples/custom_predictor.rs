//! Build a custom prediction scheme from the library's parts.
//!
//! The taxonomy crates expose every layer — index extraction, entry state,
//! update timing, scoring — so new prediction functions can be prototyped
//! in a few dozen lines. Here: a *majority-vote* predictor (predict a node
//! iff it appeared in at least 2 of the last 3 feedback bitmaps), a point
//! the paper's taxonomy allows but does not simulate. It sits between
//! `inter` (all 3 of 3) and `union` (any 1 of 3).
//!
//! ```text
//! cargo run --release --example custom_predictor
//! ```

use csp::core::hash::FxHashMap;
use csp::core::{engine, IndexSpec, Scheme};
use csp::metrics::ConfusionMatrix;
use csp::trace::{NodeId, SharingBitmap, Trace};
use csp::workloads::{Benchmark, WorkloadConfig};

/// Majority vote over the last `DEPTH` feedback bitmaps.
const DEPTH: usize = 3;
const QUORUM: u32 = 2;

#[derive(Default, Clone)]
struct VoteEntry {
    history: [SharingBitmap; DEPTH],
    filled: usize,
}

impl VoteEntry {
    fn push(&mut self, feedback: SharingBitmap) {
        self.history.rotate_right(1);
        self.history[0] = feedback;
        self.filled = (self.filled + 1).min(DEPTH);
    }

    fn predict(&self, nodes: usize) -> SharingBitmap {
        if self.filled < DEPTH {
            return SharingBitmap::empty(); // cold, like a zero-filled entry
        }
        let mut out = SharingBitmap::empty();
        for n in 0..nodes {
            let node = NodeId(n as u8);
            let votes = self.history.iter().filter(|b| b.contains(node)).count() as u32;
            if votes >= QUORUM {
                out.insert(node);
            }
        }
        out
    }
}

/// Runs the majority-vote predictor with direct update over a trace.
fn run_majority(trace: &Trace, index: IndexSpec) -> ConfusionMatrix {
    let node_bits = (trace.nodes() as u32).next_power_of_two().trailing_zeros();
    let actuals = trace.resolve_actuals();
    let mut table: FxHashMap<u64, VoteEntry> = FxHashMap::default();
    let mut matrix = ConfusionMatrix::default();
    for (event, actual) in trace.events().iter().zip(&actuals) {
        let key = index.key_of(event, node_bits);
        if event.prev_writer.is_some() {
            table.entry(key).or_default().push(event.invalidated);
        }
        let predicted = table
            .get(&key)
            .map(|e| e.predict(trace.nodes()))
            .unwrap_or(SharingBitmap::empty());
        matrix.record(predicted, *actual, trace.nodes());
    }
    matrix
}

fn main() {
    let (trace, _) = WorkloadConfig::new(Benchmark::Barnes)
        .scale(0.2)
        .generate_trace();
    let index = IndexSpec::new(true, 8, false, 0);
    println!("barnes, index pid+pc8, direct update:\n");
    println!("{:24} {:>6} {:>6}", "scheme", "pvp", "sens");

    let majority = run_majority(&trace, index).screening();
    println!(
        "{:24} {:>6.3} {:>6.3}",
        "majority(2-of-3)", majority.pvp, majority.sensitivity
    );

    for spec in ["inter(pid+pc8)3[direct]", "union(pid+pc8)3[direct]"] {
        let scheme: Scheme = spec.parse().expect("valid scheme");
        let s = engine::run_scheme(&trace, &scheme).screening();
        println!("{:24} {:>6.3} {:>6.3}", spec, s.pvp, s.sensitivity);
    }
    println!(
        "\nMajority voting lands between intersection and union on both axes —\n\
         a new point on the paper's sensitivity/PVP frontier, built entirely\n\
         from the library's public pieces."
    );
}
