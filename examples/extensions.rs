//! Tour of the beyond-the-paper extensions: sticky-spatial prediction,
//! confidence gating, Cosmos next-writer prediction, and statistically
//! sound scheme comparison.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use csp::core::confidence::confidence_curve;
use csp::core::cosmos::Cosmos;
use csp::core::sticky::StickySpatial;
use csp::core::{engine, Scheme};
use csp::workloads::{Benchmark, WorkloadConfig};

fn main() {
    let (unstruct, _) = WorkloadConfig::new(Benchmark::Unstruct)
        .scale(0.1)
        .generate_trace();
    let (mp3d, _) = WorkloadConfig::new(Benchmark::Mp3d)
        .scale(0.1)
        .generate_trace();

    // 1. Sticky-spatial (paper footnote 2): forgiving masks + neighbour
    //    widening on an address-indexed predictor.
    println!("— sticky-spatial on unstruct —");
    for radius in [0u64, 1, 2] {
        let s = StickySpatial::new(16, radius).run(&unstruct).screening();
        println!(
            "  radius {radius}: sensitivity {:.3}, PVP {:.3}",
            s.sensitivity, s.pvp
        );
    }
    let last =
        engine::run_scheme(&unstruct, &"last(add16)1".parse::<Scheme>().unwrap()).screening();
    println!(
        "  plain last(add16): sensitivity {:.3}, PVP {:.3}\n",
        last.sensitivity, last.pvp
    );

    // 2. Confidence gating (Grunwald et al.): a knob from sensitive to
    //    sure-bets-only, on one base scheme.
    println!("— confidence gating of union(pid+pc8)2 on mp3d —");
    let scheme: Scheme = "union(pid+pc8)2".parse().unwrap();
    for (threshold, m) in confidence_curve(&mp3d, &scheme).into_iter().enumerate() {
        let s = m.screening();
        println!(
            "  threshold {threshold}: sensitivity {:.3}, PVP {:.3}",
            s.sensitivity, s.pvp
        );
    }
    println!();

    // 3. Cosmos (Mukherjee & Hill): predict the next *writer* — the
    //    question that matters for the migratory sharing reader-bitmap
    //    predictors give up on.
    println!("— Cosmos next-writer prediction —");
    for (name, trace) in [("mp3d", &mp3d), ("unstruct", &unstruct)] {
        let r = Cosmos::new(16, 2).run(trace);
        println!(
            "  {name}: accuracy {:.1}%, coverage {:.1}%",
            r.accuracy() * 100.0,
            r.coverage() * 100.0
        );
    }
    println!();

    // 4. Paired comparison: is inter's PVP advantage statistically real?
    println!("— McNemar comparison on unstruct: inter(pid+pc8)4 vs last(pid+pc8) —");
    let a: Scheme = "inter(pid+pc8)4".parse().unwrap();
    let b: Scheme = "last(pid+pc8)1".parse().unwrap();
    let paired = engine::compare_schemes(&unstruct, &a, &b);
    println!(
        "  accuracy {:.4} vs {:.4}; {}; significant at 5%: {}",
        paired.accuracy_a(),
        paired.accuracy_b(),
        paired,
        paired.significant_at_5pct()
    );
}
