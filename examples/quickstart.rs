//! Quickstart: generate a workload, trace it through the simulated
//! machine, run two predictors, and compare them with screening metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use csp::core::{engine, Scheme};
use csp::workloads::{Benchmark, WorkloadConfig};

fn main() {
    // 1. Generate a coherence trace: the `water` benchmark on the paper's
    //    16-node machine (scaled down for a fast demo).
    let (trace, stats) = WorkloadConfig::new(Benchmark::Water)
        .scale(0.2)
        .seed(42)
        .generate_trace();
    println!(
        "water trace: {} coherence store misses over {} blocks ({})",
        trace.len(),
        stats.lines_touched,
        stats
    );
    println!(
        "prevalence of sharing: {:.2}% (the upper bound on any predictor's benefit)\n",
        trace.prevalence() * 100.0
    );

    // 2. Evaluate two classic predictors from the paper.
    let conservative: Scheme = "inter(pid+add6)4[direct]".parse().expect("valid scheme");
    let aggressive: Scheme = "union(dir+add14)4[direct]".parse().expect("valid scheme");
    for scheme in [conservative, aggressive] {
        let screening = engine::run_scheme(&trace, &scheme).screening();
        println!(
            "{:28} size 2^{:>2} bits | sensitivity {:.3} | PVP {:.3}",
            scheme.to_string(),
            scheme.size_log2_bits(trace.nodes()),
            screening.sensitivity,
            screening.pvp,
        );
    }
    println!(
        "\nThe intersection scheme makes fewer, surer bets (high PVP); the deep\n\
         union scheme captures more sharing (high sensitivity) at the cost of\n\
         wasted forwarding traffic — the paper's central trade-off."
    );
}
