//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface the workspace uses — [`Rng`],
//! [`SeedableRng`], and [`rngs::StdRng`] — backed by xoshiro256++ seeded
//! through SplitMix64. Streams are deterministic for a given seed but are
//! *not* bit-compatible with upstream `rand`'s `StdRng` (ChaCha12); every
//! consumer in this workspace only requires determinism, not a specific
//! stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform word generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`'s uniform distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types [`SampleRange`] can draw uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Widens to the `u64` the draw arithmetic runs in.
    fn to_u64(self) -> u64;
    /// Narrows a draw back to `Self`.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges a uniform integer can be drawn from.
///
/// Mirrors upstream `rand`'s single generic impl per range shape, so type
/// inference can flow from a use site (e.g. slice indexing) back into the
/// range literal.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        T::from_u64(self.start.to_u64().wrapping_add(draw))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.to_u64().wrapping_sub(start.to_u64()).wrapping_add(1);
        if span == 0 {
            // Full-width range: every word is a valid draw.
            return T::from_u64(rng.next_u64());
        }
        let draw = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
        T::from_u64(start.to_u64().wrapping_add(draw))
    }
}

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the uniform distribution (`[0, 1)`
    /// for floats, full width for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.random::<f64>() < p
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a single `u64`, expanded through
    /// SplitMix64 (never yields the degenerate all-zero state).
    fn seed_from_u64(state: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start in the all-zero state.
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v: usize = rng.random_range(0..5);
            seen[v] = true;
            let w: u8 = rng.random_range(3..=4);
            assert!((3..=4).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 should appear");
    }

    #[test]
    fn bool_bias_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "got {hits}");
    }
}
