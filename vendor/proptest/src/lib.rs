//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest the workspace's property tests
//! use: the [`proptest!`] macro (mixed `name in strategy` / `name: Type`
//! parameters, inner `#![proptest_config(..)]`), `prop_assert*`,
//! [`prop_oneof!`], [`strategy::Just`], integer-range and tuple
//! strategies, [`collection::vec`], `any::<T>()`, and `.prop_map`.
//!
//! Differences from upstream, by design:
//!
//! * no shrinking — a failing case reports its inputs and panics;
//! * deterministic seeding derived from the test's module path and name,
//!   so failures reproduce exactly across runs and machines;
//! * `proptest-regressions` files are ignored;
//! * the default case count is 64 (upstream: 256) to keep offline CI fast.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between strategies of a common value type; the
    /// engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.random_index(self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident => $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A => 0);
    impl_tuple_strategy!(A => 0, B => 1);
    impl_tuple_strategy!(A => 0, B => 1, C => 2);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
    impl_tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.random::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for a type: `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The result of [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The deterministic generator property tests draw from.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds a generator from a test's fully-qualified name, so each test
    /// gets an independent but fully reproducible stream.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn random_index(&mut self, len: usize) -> usize {
        self.0.random_range(0..len)
    }

    fn random_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.0.random_range(range)
    }
}

/// Test-runner plumbing used by the generated code.
pub mod test_runner {
    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (from `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands each `fn` inside a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::TestRng::for_test(__name);
            $crate::__proptest_run!(__config, __name, __rng, [] $($params)* ; $body);
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Internal: normalises the parameter list, then runs the cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    // `name in strategy` with and without trailing params.
    ($cfg:ident, $name:ident, $rng:ident, [$($acc:tt)*] $id:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_run!($cfg, $name, $rng, [$($acc)* ($id, $strat)] $($rest)*)
    };
    ($cfg:ident, $name:ident, $rng:ident, [$($acc:tt)*] $id:ident in $strat:expr ; $body:block) => {
        $crate::__proptest_run!($cfg, $name, $rng, [$($acc)* ($id, $strat)] ; $body)
    };
    // `name: Type` sugar for `name in any::<Type>()`.
    ($cfg:ident, $name:ident, $rng:ident, [$($acc:tt)*] $id:ident : $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_run!($cfg, $name, $rng, [$($acc)* ($id, $crate::any::<$ty>())] $($rest)*)
    };
    ($cfg:ident, $name:ident, $rng:ident, [$($acc:tt)*] $id:ident : $ty:ty ; $body:block) => {
        $crate::__proptest_run!($cfg, $name, $rng, [$($acc)* ($id, $crate::any::<$ty>())] ; $body)
    };
    // All parameters consumed: run the cases.
    ($cfg:ident, $name:ident, $rng:ident, [$(($id:ident, $strat:expr))*] ; $body:block) => {{
        $(let $id = $strat;)*
        for __case in 0..$cfg.cases {
            $(let $id = $crate::strategy::Strategy::sample(&$id, &mut $rng);)*
            let __inputs = {
                let mut __s = String::new();
                $(__s.push_str(&format!(
                    concat!("  ", stringify!($id), " = {:?}\n"), &$id));)*
                __s
            };
            let __result: Result<(), $crate::test_runner::TestCaseError> = (|| {
                $body
                #[allow(unreachable_code)]
                Ok(())
            })();
            if let Err(__e) = __result {
                panic!(
                    "{} failed at case {}/{}: {}\ninputs:\n{}",
                    $name, __case + 1, $cfg.cases, __e, __inputs
                );
            }
        }
    }};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __a, __b
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams_per_test() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        let sa: Vec<u64> = (0..10)
            .map(|_| crate::Arbitrary::arbitrary(&mut a))
            .collect();
        let sb: Vec<u64> = (0..10)
            .map(|_| crate::Arbitrary::arbitrary(&mut b))
            .collect();
        assert_eq!(sa, sb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed `in`/`:` parameters, trailing comma, tuples, vec, map,
        /// oneof — the full grammar the workspace relies on.
        #[test]
        fn grammar_smoke(
            x in 0u8..16,
            flag: bool,
            v in crate::collection::vec((0u32..4, any::<bool>()).prop_map(|(a, b)| (a, b)), 1..10),
            pick in prop_oneof![Just("a"), Just("b")],
            y in 1usize..=4,
        ) {
            prop_assert!(x < 16);
            prop_assert!(v.len() < 10 && !v.is_empty());
            prop_assert!(pick == "a" || pick == "b");
            prop_assert!((1..=4).contains(&y));
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(y, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(x in 0u8..4) {
                prop_assert!(x < 2, "x was {x}");
            }
        }
        inner();
    }
}
