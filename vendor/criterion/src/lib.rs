//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the API subset the workspace's benches use
//! ([`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups, [`Throughput`]) as a plain wall-clock timing harness: each
//! benchmark runs `sample_size` timed iterations after one warm-up and
//! reports mean time (and element throughput where declared). No
//! statistics, plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Declared throughput of a benchmark, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up to populate caches and lazy statics.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_one(&id.into(), self.sample_size, None, f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, f);
    }

    /// Finishes the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, iters: u32, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.checked_div(b.iters).unwrap_or(Duration::ZERO);
    match throughput {
        Some(Throughput::Elements(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{id:60} {mean:>12.2?}/iter  {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if !mean.is_zero() => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{id:60} {mean:>12.2?}/iter  {rate:>14.0} B/s");
        }
        _ => println!("{id:60} {mean:>12.2?}/iter"),
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        // 3 timed + 1 warm-up.
        assert_eq!(ran, 4);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        let mut ran = false;
        g.bench_function("inner", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
